package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("stream.hops").Add(7)
	reg.LatencyHistogram("engine.infer.ns").Observe(123456)
	s := NewServer(reg, NewTracer(0))
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{"stream.hops 7", "engine.infer.ns_count 1", "trace_spans 0"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("/metrics?format=json status %d", code)
	}
	var parsed struct {
		Counters   map[string]int64             `json:"counters"`
		Histograms map[string]HistogramSnapshot `json:"histograms"`
		TraceSpans int64                        `json:"trace_spans"`
	}
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("JSON metrics do not parse: %v\n%s", err, body)
	}
	if parsed.Counters["stream.hops"] != 7 {
		t.Fatalf("JSON counters = %v", parsed.Counters)
	}
	if h := parsed.Histograms["engine.infer.ns"]; h.Count != 1 || len(h.Buckets) == 0 {
		t.Fatalf("JSON histogram = %+v", h)
	}
}

func TestServerHealthz(t *testing.T) {
	s := NewServer(NewRegistry(), nil)
	healthy := true
	s.AddCheck("engine", func() error {
		if !healthy {
			return errors.New("deploy: corrupt model")
		}
		return nil
	})
	s.AddCheck("watchdog", func() error { return nil })
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy status %d: %s", code, body)
	}
	var rep healthReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "ok" || rep.Checks["engine"] != "ok" || rep.Checks["watchdog"] != "ok" {
		t.Fatalf("healthy report = %+v", rep)
	}

	healthy = false
	code, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy status %d, want 503", code)
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "unhealthy" || !strings.Contains(rep.Checks["engine"], "corrupt") {
		t.Fatalf("unhealthy report = %+v", rep)
	}
}

func TestServerDebugEndpoints(t *testing.T) {
	s := NewServer(NewRegistry(), nil)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	if code, body := get(t, srv, "/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars status %d", code)
	}
	if code, body := get(t, srv, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

// TestServerShutdownCompletesInFlight pins the drain contract kws-serve
// relies on: once Shutdown is called no new scrape is admitted, but scrapes
// already being served — here a /metrics render blocked on the registry lock
// and a /healthz request stuck in a slow check — still run to completion.
func TestServerShutdownCompletesInFlight(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.sessions.opened").Add(3)
	s := NewServer(reg, nil)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.AddCheck("slow", func() error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type reply struct {
		code int
		body string
		err  error
	}
	fire := func(path string) chan reply {
		ch := make(chan reply, 1)
		go func() {
			resp, err := http.Get("http://" + addr + path)
			if err != nil {
				ch <- reply{err: err}
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			ch <- reply{code: resp.StatusCode, body: string(body)}
		}()
		return ch
	}

	// Wedge /metrics mid-render (its snapshot blocks on the registry's write
	// lock) and /healthz mid-check, so both are in flight when Shutdown lands.
	reg.mu.Lock()
	healthCh := fire("/healthz")
	metricsCh := fire("/metrics")
	<-entered
	time.Sleep(50 * time.Millisecond) // let the /metrics handler reach the lock

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Shutdown must wait for the wedged requests, not abandon them.
	select {
	case err := <-shutdownErr:
		t.Fatalf("Shutdown returned %v with requests still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	// ...but the listener is already closed to new scrapes.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("new request succeeded after Shutdown began")
	}

	close(release)
	reg.mu.Unlock()
	if r := <-healthCh; r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight /healthz: code %d err %v", r.code, r.err)
	}
	if r := <-metricsCh; r.err != nil || r.code != http.StatusOK ||
		!strings.Contains(r.body, "serve.sessions.opened 3") {
		t.Fatalf("in-flight /metrics: code %d err %v body %q", r.code, r.err, r.body)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestServerShutdownDeadline: a scraper that never finishes cannot hold the
// drain open past the context deadline.
func TestServerShutdownDeadline(t *testing.T) {
	s := NewServer(NewRegistry(), nil)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.AddCheck("stuck", func() error {
		once.Do(func() { close(entered) })
		<-release
		return nil
	})
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)
	go http.Get("http://" + addr + "/healthz")
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil despite a stuck request")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Shutdown took %v, want prompt deadline exit", elapsed)
	}
}

func TestServerStartClose(t *testing.T) {
	s := NewServer(nil, nil) // nil registry selects Default
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
