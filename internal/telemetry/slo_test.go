package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// sloTestClock drives deterministic ticks.
func sloTicks(e *SLOEngine, start time.Time, n int, step time.Duration) time.Time {
	now := start
	for i := 0; i < n; i++ {
		now = now.Add(step)
		e.Tick(now)
	}
	return now
}

// TestSLOBurnRates drives a counter-backed objective through healthy and
// burning phases and checks the window math.
func TestSLOBurnRates(t *testing.T) {
	reg := NewRegistry()
	bad := reg.Counter("test.bad")
	total := reg.Counter("test.total")

	e := NewSLOEngine([]time.Duration{10 * time.Second, 30 * time.Second}, time.Second, 2)
	e.Add(Objective{
		Name:   "clean",
		Goal:   0.99,
		Source: CounterFailureSource(bad, total),
	}, reg)

	start := time.Unix(1000, 0)
	e.Tick(start) // priming tick

	// Healthy phase: 100 events/s, none bad.
	now := start
	for i := 0; i < 10; i++ {
		total.Add(100)
		now = sloTicks(e, now, 1, time.Second)
	}
	st := e.Status()
	if len(st) != 1 {
		t.Fatalf("objectives = %d", len(st))
	}
	if st[0].Burning {
		t.Fatal("healthy phase should not burn")
	}
	if w := st[0].Windows[0]; w.Total != 1000 || w.Good != 1000 || w.Burn != 0 {
		t.Fatalf("healthy window: %+v", w)
	}

	// Burning phase: 10%% bad — burn = 0.10/0.01 = 10 > alert on both windows.
	for i := 0; i < 12; i++ {
		total.Add(100)
		bad.Add(10)
		now = sloTicks(e, now, 1, time.Second)
	}
	st = e.Status()
	if !st[0].Burning {
		t.Fatalf("burning phase not detected: %+v", st[0].Windows)
	}
	w0 := st[0].Windows[0]
	if w0.BadRatio < 0.09 || w0.BadRatio > 0.11 {
		t.Fatalf("fast-window bad ratio = %v, want ~0.10", w0.BadRatio)
	}
	if w0.Burn < 9 || w0.Burn > 11 {
		t.Fatalf("fast-window burn = %v, want ~10", w0.Burn)
	}
	// Exported gauges must agree.
	if g := reg.FloatGauge("slo.clean.burn.10s").Value(); g != w0.Burn {
		t.Fatalf("burn gauge = %v, status = %v", g, w0.Burn)
	}
	if reg.Gauge("slo.clean.burning").Value() != 1 {
		t.Fatal("burning gauge not set")
	}
	if !e.Burning() {
		t.Fatal("engine-level Burning() false")
	}

	// Recovery: clean traffic pushes the fast window back under the alert.
	for i := 0; i < 12; i++ {
		total.Add(100)
		now = sloTicks(e, now, 1, time.Second)
	}
	st = e.Status()
	if st[0].Burning {
		t.Fatalf("should have recovered: %+v", st[0].Windows)
	}
	if e.Burning() {
		t.Fatal("engine-level Burning() stuck")
	}
}

// TestSLOTwoWindowGate: a one-second spike trips the fast window but not
// the slower one, so the objective must NOT report burning.
func TestSLOTwoWindowGate(t *testing.T) {
	reg := NewRegistry()
	bad := reg.Counter("g.bad")
	total := reg.Counter("g.total")
	e := NewSLOEngine([]time.Duration{2 * time.Second, 30 * time.Second}, time.Second, 2)
	e.Add(Objective{Name: "gate", Goal: 0.99, Source: CounterFailureSource(bad, total)}, reg)

	start := time.Unix(2000, 0)
	e.Tick(start)
	now := start
	// 28s of clean traffic to dilute the slow window.
	for i := 0; i < 28; i++ {
		total.Add(1000)
		now = sloTicks(e, now, 1, time.Second)
	}
	// One bad second.
	total.Add(1000)
	bad.Add(500)
	now = sloTicks(e, now, 1, time.Second)

	st := e.Status()
	if w := st[0].Windows[0]; w.Burn <= 2 {
		t.Fatalf("fast window should exceed alert, burn = %v", w.Burn)
	}
	if st[0].Burning {
		t.Fatal("single-window spike must not set Burning (two-window gate)")
	}
}

// TestSLOHistogramSource checks HistogramTargetSource counts observations
// at or under the target as good.
func TestSLOHistogramSource(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	src := HistogramTargetSource(h, 100)
	for i := 0; i < 90; i++ {
		h.Observe(50) // good
	}
	for i := 0; i < 10; i++ {
		h.Observe(500) // bad
	}
	good, total := src()
	if good != 90 || total != 100 {
		t.Fatalf("good=%d total=%d, want 90/100", good, total)
	}
	// Target beyond the last bound: everything counts as good.
	all := HistogramTargetSource(h, 1_000_000)
	good, total = all()
	if good != 100 || total != 100 {
		t.Fatalf("beyond-last-bound: good=%d total=%d", good, total)
	}
}

// TestSLOServeHTTP checks the /slo JSON shape.
func TestSLOServeHTTP(t *testing.T) {
	reg := NewRegistry()
	e := NewSLOEngine(nil, time.Second, 2)
	e.Add(Objective{Name: "o", Description: "d", Goal: 0.999,
		Source: CounterFailureSource(reg.Counter("b"), reg.Counter("t"))}, reg)
	e.Tick(time.Unix(3000, 0))

	rec := httptest.NewRecorder()
	e.ServeHTTP(rec, httptest.NewRequest("GET", "/slo", nil))
	var body struct {
		Burning    bool `json:"burning"`
		Objectives []struct {
			Name    string  `json:"name"`
			Goal    float64 `json:"goal"`
			Windows []struct {
				WindowS float64 `json:"window_s"`
			} `json:"windows"`
		} `json:"objectives"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad /slo JSON: %v", err)
	}
	if len(body.Objectives) != 1 || body.Objectives[0].Name != "o" {
		t.Fatalf("objectives: %+v", body.Objectives)
	}
	if n := len(body.Objectives[0].Windows); n != 3 {
		t.Fatalf("default windows = %d, want 3", n)
	}
	if body.Objectives[0].Windows[0].WindowS != 30 {
		t.Fatalf("fastest window = %v s", body.Objectives[0].Windows[0].WindowS)
	}
}

// TestSLONil confirms a nil engine is inert.
func TestSLONil(t *testing.T) {
	var e *SLOEngine
	e.Tick(time.Now())
	e.Add(Objective{}, nil)
	if e.Burning() || e.Status() != nil || e.Windows() != nil {
		t.Fatal("nil engine leaked state")
	}
}
