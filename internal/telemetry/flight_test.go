package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestFlightRecorderBasics checks recording, ordering, and the JSON dump
// shape on a small ring.
func TestFlightRecorderBasics(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(FlightSessionOpen, "s1", 0, 0, 0, "")
	f.Record(FlightBreakerTrip, "s1", 0, 1, 250, "")
	f.Record(FlightSessionClose, "s1", 0, 0, 0, "client-close")

	evs := f.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("snapshot length = %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d, want %d", i, ev.Seq, i+1)
		}
	}
	if evs[1].Kind != FlightBreakerTrip || evs[1].A != 1 || evs[1].B != 250 {
		t.Fatalf("breaker event mismatch: %+v", evs[1])
	}
	if evs[2].Note != "client-close" {
		t.Fatalf("close note = %q", evs[2].Note)
	}
	if got := f.Total(); got != 3 {
		t.Fatalf("Total = %d, want 3", got)
	}

	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var dump struct {
		Capacity int `json:"capacity"`
		Events   []struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if dump.Capacity != 8 || len(dump.Events) != 3 {
		t.Fatalf("dump capacity=%d events=%d", dump.Capacity, len(dump.Events))
	}
	if dump.Events[1].Kind != "breaker.trip" {
		t.Fatalf("kind name = %q", dump.Events[1].Kind)
	}
}

// TestFlightRecorderWraparound is the ordering property test: after heavy
// wraparound, a dump is strictly increasing in sequence and every entry is
// internally consistent (no torn entries). Payload fields are derived from
// the sequence number so a torn entry — one field from an old event, one
// from a new — is detectable.
func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(64)
	const total = 10_000
	for i := 0; i < total; i++ {
		// A = seq-to-be, B = 2*A: a torn entry breaks the invariant.
		a := int64(i + 1)
		f.Record(FlightSessionOpen, "w", uint64(a), a, 2*a, "")
	}
	evs := f.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("snapshot length = %d, want full ring 64", len(evs))
	}
	for i, ev := range evs {
		if i > 0 && evs[i-1].Seq >= ev.Seq {
			t.Fatalf("dump out of order at %d: %d then %d", i, evs[i-1].Seq, ev.Seq)
		}
		if ev.A != int64(ev.Seq) || ev.B != 2*ev.A || ev.Trace != ev.Seq {
			t.Fatalf("torn entry: seq=%d a=%d b=%d trace=%d", ev.Seq, ev.A, ev.B, ev.Trace)
		}
	}
	if evs[len(evs)-1].Seq != total {
		t.Fatalf("newest seq = %d, want %d", evs[len(evs)-1].Seq, total)
	}
}

// TestFlightRecorderConcurrent hammers N writer goroutines against
// concurrent dumps under -race, checking every dump for ordering and torn
// entries.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(128)
	const writers = 8
	const perWriter = 2000

	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.Record(FlightKind(i%int(numFlightKinds)), "sess", 7, int64(i), int64(2*i), "note")
				if i%100 == 0 {
					f.SnapshotIncident(FlightQuarantine, "sess")
				}
			}
		}(w)
	}

	var dumps sync.WaitGroup
	for d := 0; d < 4; d++ {
		dumps.Add(1)
		go func() {
			defer dumps.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := f.Snapshot()
				for i := 1; i < len(evs); i++ {
					if evs[i-1].Seq >= evs[i].Seq {
						t.Errorf("concurrent dump out of order: %d then %d", evs[i-1].Seq, evs[i].Seq)
						return
					}
				}
				for _, ev := range evs {
					if ev.B != 2*ev.A {
						t.Errorf("torn entry under concurrency: a=%d b=%d", ev.A, ev.B)
						return
					}
				}
				var buf bytes.Buffer
				f.WriteJSON(&buf)
			}
		}()
	}

	wg.Wait()
	close(stop)
	dumps.Wait()

	if got := f.Total(); got != writers*perWriter {
		t.Fatalf("Total = %d, want %d", got, writers*perWriter)
	}
	if incs := f.Incidents(); len(incs) != flightMaxIncidents {
		t.Fatalf("incidents = %d, want bounded at %d", len(incs), flightMaxIncidents)
	}
}

// TestFlightRecorderIncident checks that an incident freezes the trigger's
// surrounding events and survives subsequent wraparound of the live ring.
func TestFlightRecorderIncident(t *testing.T) {
	f := NewFlightRecorder(32)
	f.Record(FlightSessionOpen, "victim", 0, 0, 0, "")
	f.Record(FlightBreakerTrip, "victim", 0, 3, 900, "")
	f.Record(FlightQuarantine, "victim", 0, 3, 900, "")
	f.SnapshotIncident(FlightQuarantine, "victim")

	// Wrap the live ring completely; the incident must retain the trigger.
	for i := 0; i < 100; i++ {
		f.Record(FlightSessionOpen, "other", 0, 0, 0, "")
	}
	live := f.Snapshot()
	for _, ev := range live {
		if ev.Session == "victim" {
			t.Fatalf("victim events should have wrapped out of the live ring")
		}
	}

	incs := f.Incidents()
	if len(incs) != 1 {
		t.Fatalf("incidents = %d, want 1", len(incs))
	}
	inc := incs[0]
	if inc.Trigger != "session.quarantine" || inc.Session != "victim" {
		t.Fatalf("incident header mismatch: %+v", inc)
	}
	var kinds []FlightKind
	for i, ev := range inc.Events {
		if i > 0 && inc.Events[i-1].Seq >= ev.Seq {
			t.Fatalf("incident events out of order")
		}
		kinds = append(kinds, ev.Kind)
	}
	want := []FlightKind{FlightSessionOpen, FlightBreakerTrip, FlightQuarantine}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("incident kinds = %v, want %v", kinds, want)
	}
}

// TestFlightRecorderNil confirms a nil recorder is a total no-op, including
// its HTTP and JSON surfaces.
func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightShed, "s", 0, 0, 0, "")
	f.SnapshotIncident(FlightShed, "s")
	if f.Snapshot() != nil || f.Incidents() != nil || f.Total() != 0 || f.Now() != 0 {
		t.Fatal("nil recorder leaked state")
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	rec := httptest.NewRecorder()
	f.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flight", nil))
	if rec.Code != 200 {
		t.Fatalf("nil ServeHTTP status = %d", rec.Code)
	}
}

// BenchmarkFlightRecord measures the hot recording path; it must not
// allocate.
func BenchmarkFlightRecord(b *testing.B) {
	f := NewFlightRecorder(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(FlightBackpressure, "bench", 42, int64(i), 0, "drop")
	}
}
