// Package telemetry is the repository's stdlib-only observability layer:
// lock-cheap runtime metrics (counters, gauges, fixed-bucket latency
// histograms) held in a Registry, a span tracer that exports Chrome
// trace-event JSON (trace.go), a structured JSON logger (log.go), and an
// HTTP server exposing /metrics, /healthz, /debug/vars and net/http/pprof
// (server.go).
//
// Every instrument is safe for concurrent use and safe to call through nil:
// a nil *Counter, *Gauge, *FloatGauge, *Histogram, *Tracer or *Logger is a
// no-op, and a nil *Registry hands out nil instruments. Disabled telemetry
// is therefore a single pointer comparison on the hot path — no branches in
// caller code, no allocations, no locks.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value (queue depth, bytes resident).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark operation (e.g. scratch-arena bytes).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is an instantaneous float64 value (loss, accuracy,
// samples/sec), stored as atomic bits.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value (0 before the first Set).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution of int64 observations. Bounds
// are inclusive upper limits in ascending order; one implicit overflow
// bucket catches everything beyond the last bound. Observe never allocates
// and never locks.
//
// Reads are generation-consistent: snapshots see count, sum and every
// bucket from one instant, never a mid-update mix. Internally observations
// land in one of two banks selected by the high bit of countAndHot (the low
// 63 bits count observations ever initiated). A snapshot flips the hot
// bank, waits for the writers still in flight on the now-cold bank — each
// bumps its bank's done counter as its last store — reads the quiescent
// cold bank, folds it back into the hot bank and zeroes it. Writers stay
// lock-free and wait-free throughout; only snapshots serialise (snapMu).
type Histogram struct {
	bounds      []int64
	countAndHot atomic.Uint64 // bit 63: hot bank index; bits 0..62: observations initiated
	banks       [2]histBank
	ex          []atomic.Uint64 // per-bucket exemplar trace ID (last observation to land there)
	snapMu      sync.Mutex
}

// histBank is one of the histogram's two accumulation banks.
type histBank struct {
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	done   atomic.Uint64 // observations fully recorded here (cumulative after folds)
}

const hotBit = uint64(1) << 63

// LatencyBuckets returns the default nanosecond bounds used for duration
// histograms: a 1–2.5–5 ladder from 100 ns to 10 s (23 buckets plus
// overflow), enough resolution for p50/p95/p99 of everything from one conv
// layer to a whole training epoch.
func LatencyBuckets() []int64 {
	var b []int64
	for _, decade := range []int64{100, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9} {
		b = append(b, decade, decade*5/2, decade*5)
	}
	return append(b, 1e10)
}

// newHistogram builds a histogram over the given ascending bounds.
func newHistogram(bounds []int64) *Histogram {
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		ex:     make([]atomic.Uint64, len(bounds)+1),
	}
	for b := range h.banks {
		h.banks[b].counts = make([]atomic.Int64, len(bounds)+1)
	}
	return h
}

// bucket returns the index of the bucket v falls into.
func (h *Histogram) bucket(v int64) int {
	// Binary search beats linear scan only past ~64 buckets; the default
	// ladder has 24, and the loop is branch-predictable for clustered
	// latencies.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	n := h.countAndHot.Add(1)
	b := &h.banks[n>>63]
	b.counts[h.bucket(v)].Add(1)
	b.sum.Add(v)
	b.done.Add(1)
}

// ObserveTrace records one value and stamps its bucket's exemplar with the
// given trace ID, so a latency spike in a top bucket links to a concrete
// trace (see TraceStore). A zero ID leaves the exemplar untouched.
func (h *Histogram) ObserveTrace(v int64, traceID uint64) {
	if h == nil {
		return
	}
	n := h.countAndHot.Add(1)
	b := &h.banks[n>>63]
	i := h.bucket(v)
	b.counts[i].Add(1)
	b.sum.Add(v)
	if traceID != 0 {
		h.ex[i].Store(traceID)
	}
	b.done.Add(1)
}

// ObserveSince records the nanoseconds elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(int64(time.Since(t0)))
	}
}

// read returns a generation-consistent copy of the histogram's cumulative
// state: buckets, sum and count all from the same instant. It briefly spins
// waiting for writers in flight on the cold bank (each finishes in a few
// instructions), folds the cold bank into the hot one, and leaves totals
// unchanged.
func (h *Histogram) read(buckets []int64) (out []int64, sum, count int64) {
	h.snapMu.Lock()
	defer h.snapMu.Unlock()

	n := h.countAndHot.Add(hotBit) // flip the hot bank
	count = int64(n &^ hotBit)     // observations initiated ever
	hot := &h.banks[n>>63]
	cold := &h.banks[(n>>63)^1]
	for cold.done.Load() != uint64(count) {
		runtime.Gosched() // writers drain in a handful of instructions
	}

	// The cold bank is quiescent and cumulative: copy it out.
	sum = cold.sum.Load()
	out = buckets[:0]
	for i := range cold.counts {
		out = append(out, cold.counts[i].Load())
	}

	// Fold cold into hot (new observations land there) and zero it, so the
	// next flip starts from a clean bank while totals stay cumulative.
	hot.sum.Add(sum)
	for i := range cold.counts {
		hot.counts[i].Add(out[i])
		cold.counts[i].Store(0)
	}
	cold.sum.Store(0)
	cold.done.Store(0)
	hot.done.Add(uint64(count))
	return out, sum, count
}

// Count returns the number of observations initiated (exact, lock-free).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return int64(h.countAndHot.Load() &^ hotBit)
}

// Sum returns the sum of all observed values, read consistently.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	_, sum, _ := h.read(make([]int64, 0, len(h.bounds)+1))
	return sum
}

// quantileFrom computes the q-quantile over an already-copied bucket set.
func (h *Histogram) quantileFrom(buckets []int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := range buckets {
		cum += buckets[i]
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			break
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q ≤ 1):
// the bound of the first bucket at which the cumulative count reaches
// q·total. Observations in the overflow bucket report the largest bound.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	buckets, _, count := h.read(make([]int64, 0, len(h.bounds)+1))
	return h.quantileFrom(buckets, count, q)
}

// HistogramSnapshot is a generation-consistent copy of a histogram for
// export: count, sum and buckets are captured from one instant, so a
// /metrics scrape racing Observe calls never shows sum and count from
// different moments.
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	MeanNs  float64 `json:"mean"`
	P50     int64   `json:"p50"`
	P95     int64   `json:"p95"`
	P99     int64   `json:"p99"`
	Bounds  []int64 `json:"bounds,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
	// Exemplars holds, per bucket, the trace ID of the last ObserveTrace
	// that landed there (0 = none); same length as Buckets when present.
	Exemplars []uint64 `json:"exemplars,omitempty"`
}

// Snapshot captures the histogram's current shape in one generation.
func (h *Histogram) Snapshot(withBuckets bool) HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	buckets, sum, count := h.read(make([]int64, 0, len(h.bounds)+1))
	s := HistogramSnapshot{
		Count: count,
		Sum:   sum,
		P50:   h.quantileFrom(buckets, count, 0.50),
		P95:   h.quantileFrom(buckets, count, 0.95),
		P99:   h.quantileFrom(buckets, count, 0.99),
	}
	if s.Count > 0 {
		s.MeanNs = float64(s.Sum) / float64(s.Count)
	}
	if withBuckets {
		s.Bounds = append([]int64(nil), h.bounds...)
		s.Buckets = buckets
		var any bool
		exs := make([]uint64, len(h.ex))
		for i := range h.ex {
			if exs[i] = h.ex[i].Load(); exs[i] != 0 {
				any = true
			}
		}
		if any {
			s.Exemplars = exs
		}
	}
	return s
}

// Registry names and owns a process's instruments. Instruments are created
// on first lookup and shared thereafter, so independent components agree on
// a metric by name alone. The zero registry is unusable; use NewRegistry or
// the package Default.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	fgauges  map[string]*FloatGauge
	hists    map[string]*Histogram
}

// Default is the process-wide registry: always present, so leaf packages
// (e.g. the feature cache) can count unconditionally and the numbers are
// simply unobserved until a server is attached.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fgauges:  make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.fgauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.fgauges[name]; g == nil {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use (nil bounds select LatencyBuckets). Later lookups ignore the
// bounds argument.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if bounds == nil {
			bounds = LatencyBuckets()
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// LatencyHistogram returns the named histogram with the default latency
// bounds.
func (r *Registry) LatencyHistogram(name string) *Histogram {
	return r.Histogram(name, nil)
}

// snapshot collects every instrument under the read lock, values loaded
// atomically.
type snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	FloatG     map[string]float64           `json:"float_gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

func (r *Registry) snap(withBuckets bool) snapshot {
	s := snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		FloatG:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, g := range r.fgauges {
		s.FloatG[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot(withBuckets)
	}
	return s
}

// WriteText renders every instrument as sorted "name value" lines; histograms
// expand into _count/_sum/_mean/_p50/_p95/_p99 rows. This is the /metrics
// text format.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.snap(false)
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.FloatG)+6*len(s.Histograms))
	for n, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", n, v))
	}
	for n, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", n, v))
	}
	for n, v := range s.FloatG {
		lines = append(lines, fmt.Sprintf("%s %g", n, v))
	}
	for n, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", n, h.Count),
			fmt.Sprintf("%s_sum %d", n, h.Sum),
			fmt.Sprintf("%s_mean %.0f", n, h.MeanNs),
			fmt.Sprintf("%s_p50 %d", n, h.P50),
			fmt.Sprintf("%s_p95 %d", n, h.P95),
			fmt.Sprintf("%s_p99 %d", n, h.P99),
		)
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the full snapshot (histogram buckets included) as
// indented JSON. This is the /metrics?format=json format.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.snap(true))
}
