package telemetry

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestWritePrometheusGolden renders a deterministic registry and compares
// byte-for-byte against testdata/prometheus.golden (regenerate with
// `go test ./internal/telemetry -run Golden -update`).
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve.sessions.opened").Add(42)
	reg.Counter("serve.sessions.closed.client-close").Add(40)
	reg.Gauge("serve.sessions.active").Set(2)
	reg.FloatGauge("slo.hop-p99.burn.30s").Set(0.25)
	h := reg.Histogram("serve.hop.e2e.ns", []int64{1000, 10000, 100000})
	h.Observe(500)
	h.Observe(5000)
	h.Observe(5000)
	h.Observe(50000)
	h.Observe(2_000_000) // overflow bucket

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}

	golden := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("prometheus exposition drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePrometheusFormat spot-checks structural invariants independent of
// the golden file: name sanitisation, cumulative buckets, count/sum
// consistency.
func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.b-c").Inc()
	reg.Counter("0lead").Inc()
	h := reg.Histogram("lat.ns", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE a_b_c_total counter\na_b_c_total 1\n",
		"_0lead_total 1\n",
		"lat_ns_bucket{le=\"10\"} 1\n",
		"lat_ns_bucket{le=\"100\"} 2\n",
		"lat_ns_bucket{le=\"+Inf\"} 3\n",
		"lat_ns_sum 5055\n",
		"lat_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Deterministic: two renders must be identical.
	var buf2 bytes.Buffer
	reg.WritePrometheus(&buf2)
	if buf.String() != buf2.String() {
		t.Fatal("exposition not deterministic")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"serve.hop.e2e.ns": "serve_hop_e2e_ns",
		"a-b":              "a_b",
		"9to5":             "_9to5",
		"ok_name:x":        "ok_name:x",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
