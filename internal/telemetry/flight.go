package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder is the serve-plane's forensic event log: a fixed-size,
// allocation-free, concurrent ring of structured events (session open/close
// with reason, breaker trips, quarantines, sheds, backpressure drops, lane
// stalls, drain phases), each stamped with a session ID, an optional trace
// ID and monotonic time. It answers "what happened around 14:02" after the
// fact, without a debugger attached and without rerunning the load.
//
// Writers claim a slot with one atomic increment and copy the event in
// under that slot's mutex — no allocation, no global lock, bounded memory
// forever. Dumps copy slot by slot and sort by sequence number, so a dump
// taken mid-write is always in event order with no torn entries (a slot
// only ever moves forward in sequence).
//
// Because the ring wraps, the events *leading up to* a fault would
// eventually be overwritten; SnapshotIncident freezes the recent tail into
// a bounded per-incident buffer at the moment a session is quarantined or
// shed, so incident forensics survive arbitrarily long uptimes.
//
// A nil *FlightRecorder is fully disabled: Record and SnapshotIncident are
// no-ops costing one pointer compare.
type FlightRecorder struct {
	start     time.Time
	startUnix int64
	seq       atomic.Uint64
	slots     []flightSlot
	mask      uint64

	imu       sync.Mutex
	incidents []FlightIncident
}

type flightSlot struct {
	mu sync.Mutex
	ev FlightEvent
}

// FlightKind enumerates the event types the recorder understands.
type FlightKind uint8

const (
	FlightServerStart FlightKind = iota
	FlightSessionOpen
	FlightSessionClose
	FlightAdmissionReject
	FlightBackpressure
	FlightBreakerTrip
	FlightQuarantine
	FlightShed
	FlightLaneStall
	FlightDrainPhase
	FlightSLO
	numFlightKinds
)

var flightKindNames = [numFlightKinds]string{
	"server.start",
	"session.open",
	"session.close",
	"admission.reject",
	"backpressure.drop",
	"breaker.trip",
	"session.quarantine",
	"session.shed",
	"lane.stall",
	"drain.phase",
	"slo.budget",
}

// String names the kind as it appears in dumps.
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) {
		return flightKindNames[k]
	}
	return "unknown"
}

// FlightEvent is one recorded event. A and B carry kind-specific integers
// (trip number and fault score for breaker trips, queue depth for
// backpressure, the tightened cap for SLO actions); Note is a static
// detail string (close reason, drain phase) — callers pass constants so
// recording never allocates.
type FlightEvent struct {
	Seq     uint64     `json:"seq"`
	TNs     int64      `json:"t_ns"` // monotonic ns since recorder start
	Kind    FlightKind `json:"-"`
	Session string     `json:"session,omitempty"`
	Trace   uint64     `json:"trace,omitempty"`
	A       int64      `json:"a,omitempty"`
	B       int64      `json:"b,omitempty"`
	Note    string     `json:"note,omitempty"`
}

// flightEventJSON is the dump schema: Kind rendered as its name.
type flightEventJSON struct {
	FlightEvent
	KindName string `json:"kind"`
}

// FlightIncident is a frozen tail of the ring captured when a session
// faulted, so its trigger events survive ring wraparound.
type FlightIncident struct {
	Seq     uint64        `json:"seq"`  // sequence of the triggering event
	TNs     int64         `json:"t_ns"` // capture time, monotonic ns
	Trigger string        `json:"trigger"`
	Session string        `json:"session"`
	Events  []FlightEvent `json:"-"`
}

const (
	// flightIncidentTail is how many trailing events an incident freezes.
	flightIncidentTail = 256
	// flightMaxIncidents bounds the incident buffer; older incidents drop.
	flightMaxIncidents = 32
)

// NewFlightRecorder returns a recorder retaining the most recent `capacity`
// events (rounded up to a power of two; <= 0 selects 4096).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 4096
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	now := time.Now()
	return &FlightRecorder{
		start:     now,
		startUnix: now.UnixNano(),
		slots:     make([]flightSlot, n),
		mask:      uint64(n - 1),
	}
}

// Now returns the recorder's monotonic clock reading in nanoseconds (0 on a
// nil recorder).
func (f *FlightRecorder) Now() int64 {
	if f == nil {
		return 0
	}
	return int64(time.Since(f.start))
}

// Record appends one event. It never allocates and never takes a lock
// shared with another slot: one atomic add claims a sequence number, one
// short per-slot critical section publishes the event. Safe from any
// goroutine; a nil recorder is a no-op.
func (f *FlightRecorder) Record(kind FlightKind, session string, trace uint64, a, b int64, note string) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1)
	t := int64(time.Since(f.start))
	s := &f.slots[seq&f.mask]
	s.mu.Lock()
	// A slow writer that claimed an old sequence must not clobber a newer
	// event that already wrapped onto this slot.
	if seq > s.ev.Seq {
		s.ev = FlightEvent{Seq: seq, TNs: t, Kind: kind, Session: session, Trace: trace, A: a, B: b, Note: note}
	}
	s.mu.Unlock()
}

// Total returns how many events were ever recorded; Total minus the dump
// length is how many wrapped out of the ring.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	return f.seq.Load()
}

// Snapshot copies the live ring, ordered by sequence number. Entries are
// never torn (each is copied under its slot lock); under concurrent writes
// the dump is a consistent sample — strictly increasing sequence numbers,
// possibly with gaps where a writer wrapped past the dump cursor.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		ev := s.ev
		s.mu.Unlock()
		if ev.Seq != 0 {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// SnapshotIncident freezes the most recent flightIncidentTail events into
// the incident buffer. Call it right after recording the triggering event
// (quarantine, shed) so the trigger and everything leading up to it are
// captured together.
func (f *FlightRecorder) SnapshotIncident(trigger FlightKind, session string) {
	if f == nil {
		return
	}
	evs := f.Snapshot()
	if len(evs) > flightIncidentTail {
		evs = evs[len(evs)-flightIncidentTail:]
	}
	inc := FlightIncident{
		Seq:     f.seq.Load(),
		TNs:     int64(time.Since(f.start)),
		Trigger: trigger.String(),
		Session: session,
		Events:  evs,
	}
	f.imu.Lock()
	f.incidents = append(f.incidents, inc)
	if len(f.incidents) > flightMaxIncidents {
		f.incidents = f.incidents[len(f.incidents)-flightMaxIncidents:]
	}
	f.imu.Unlock()
}

// Incidents returns the frozen incident buffers, oldest first.
func (f *FlightRecorder) Incidents() []FlightIncident {
	if f == nil {
		return nil
	}
	f.imu.Lock()
	defer f.imu.Unlock()
	return append([]FlightIncident(nil), f.incidents...)
}

// flightDump is the /debug/flight JSON schema.
type flightDump struct {
	StartUnixNs int64                `json:"start_unix_ns"` // t_ns values are relative to this
	NowNs       int64                `json:"now_ns"`
	Capacity    int                  `json:"capacity"`
	EventsTotal uint64               `json:"events_total"`
	Events      []flightEventJSON    `json:"events"`
	Incidents   []flightIncidentJSON `json:"incidents"`
}

type flightIncidentJSON struct {
	FlightIncident
	Events []flightEventJSON `json:"events"`
}

func eventsJSON(evs []FlightEvent) []flightEventJSON {
	out := make([]flightEventJSON, len(evs))
	for i, ev := range evs {
		out[i] = flightEventJSON{FlightEvent: ev, KindName: ev.Kind.String()}
	}
	return out
}

// WriteJSON dumps the ring and the incident buffers as indented JSON.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	d := flightDump{
		Events:    []flightEventJSON{},
		Incidents: []flightIncidentJSON{},
	}
	if f != nil {
		d.StartUnixNs = f.startUnix
		d.NowNs = int64(time.Since(f.start))
		d.Capacity = len(f.slots)
		d.EventsTotal = f.seq.Load()
		d.Events = eventsJSON(f.Snapshot())
		for _, inc := range f.Incidents() {
			d.Incidents = append(d.Incidents, flightIncidentJSON{
				FlightIncident: inc,
				Events:         eventsJSON(inc.Events),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ServeHTTP exposes the dump at /debug/flight.
func (f *FlightRecorder) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	f.WriteJSON(w)
}
