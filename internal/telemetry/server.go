package telemetry

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Server exposes a process's runtime observability over HTTP:
//
//	/metrics       registry snapshot (text; ?format=json for full JSON)
//	/healthz       registered health checks, 200 when all pass, 503 otherwise
//	/debug/vars    expvar (memstats, cmdline, anything else published)
//	/debug/pprof/  the standard pprof profile endpoints
//
// It is intended for a loopback or cluster-internal port: the pprof
// endpoints expose enough to profile (and stall) the process, so the addr
// should not be public.
type Server struct {
	reg    *Registry
	tracer *Tracer

	mu     sync.Mutex
	checks map[string]func() error
	extra  map[string]http.Handler

	ln   net.Listener
	http *http.Server
}

// NewServer builds a server over the given registry (nil selects Default).
// The optional tracer contributes span counts to /metrics' JSON view.
func NewServer(reg *Registry, tracer *Tracer) *Server {
	if reg == nil {
		reg = Default
	}
	return &Server{reg: reg, tracer: tracer, checks: make(map[string]func() error)}
}

// AddCheck registers a named health check. The function is called on every
// /healthz request; a non-nil error marks the whole process unhealthy.
func (s *Server) AddCheck(name string, fn func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.checks[name] = fn
}

// Handle mounts an extra handler on the server's route table (e.g. a
// FlightRecorder at /debug/flight, an SLOEngine at /slo). Call before
// Start/Handler; later registrations are not picked up by an already-built
// mux.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.extra == nil {
		s.extra = make(map[string]http.Handler)
	}
	s.extra[pattern] = h
}

// Handler returns the server's route table, usable directly in tests via
// net/http/httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.serveMetrics)
	s.mu.Lock()
	for p, h := range s.extra {
		mux.Handle(p, h)
	}
	s.mu.Unlock()
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr and serves in the background, returning the bound
// address (useful with ":0"). Serving errors after a successful bind are
// ignored; Close shuts the listener down.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.http = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go s.http.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the HTTP server immediately, if started. In-flight requests
// are dropped; a draining process should prefer Shutdown.
func (s *Server) Close() error {
	if s.http == nil {
		return nil
	}
	return s.http.Close()
}

// Shutdown stops the server gracefully: the listener closes at once so no
// new scrapes are admitted, while requests already in flight (a /metrics
// scrape mid-render, a slow health check) run to completion. The ctx
// deadline bounds the wait — on expiry remaining connections are torn down
// with Close and ctx's error is returned, so a serving daemon's drain
// window is never held open by one stuck scraper.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.http == nil {
		return nil
	}
	if err := s.http.Shutdown(ctx); err != nil {
		s.http.Close()
		return err
	}
	return nil
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	accept := r.Header.Get("Accept")
	if r.URL.Query().Get("format") == "prom" ||
		strings.Contains(accept, "version=0.0.4") ||
		strings.Contains(accept, "openmetrics") {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.reg.WritePrometheus(w)
		return
	}
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		w.Header().Set("Content-Type", "application/json")
		body := struct {
			snapshot
			TraceSpans   int64 `json:"trace_spans"`
			TraceDropped int64 `json:"trace_dropped"`
		}{s.reg.snap(true), int64(s.tracer.Len()), s.tracer.Dropped()}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.reg.WriteText(w)
	if s.tracer != nil {
		fmt.Fprintf(w, "trace_spans %d\ntrace_dropped %d\n", s.tracer.Len(), s.tracer.Dropped())
	}
}

// healthReport is the /healthz response body.
type healthReport struct {
	Status string            `json:"status"` // "ok" | "unhealthy"
	Checks map[string]string `json:"checks"` // name → "ok" | error text
}

func (s *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.checks))
	fns := make(map[string]func() error, len(s.checks))
	for n, fn := range s.checks {
		names = append(names, n)
		fns[n] = fn
	}
	s.mu.Unlock()
	sort.Strings(names)

	rep := healthReport{Status: "ok", Checks: make(map[string]string, len(names))}
	for _, n := range names {
		if err := fns[n](); err != nil {
			rep.Status = "unhealthy"
			rep.Checks[n] = err.Error()
		} else {
			rep.Checks[n] = "ok"
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if rep.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
}
