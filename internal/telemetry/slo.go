package telemetry

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// SLOEngine evaluates declarative service-level objectives over rolling
// windows using multi-window burn rates, the standard SRE construction: an
// objective declares a goal (e.g. 99% of hops under target), the engine
// samples each objective's cumulative good/total counters on a fixed tick,
// buckets the deltas into a time ring, and reports per-window burn rates
//
//	burn = badRatio / (1 - goal)
//
// so burn 1.0 consumes the error budget exactly at the rate the goal
// allows, and burn 14 on a short window means the budget will be gone
// within hours. An objective is Burning when the burn rate exceeds the
// alert threshold on BOTH the fastest window and the next one up — the
// two-window condition keeps one bad second from paging while still
// resetting quickly once the condition clears.
//
// Status is exposed at /slo (the engine is an http.Handler), and as gauges
// on the registry (slo.<name>.ratio.<window>, slo.<name>.burn.<window>,
// slo.<name>.burning) so burn rates are scrapeable alongside everything
// else. serve.Server can optionally feed Burning() back into admission
// control (budget-aware degradation).
//
// A nil *SLOEngine is inert: Tick and Burning are no-ops.

// GoodTotal samples an objective's cumulative good and total event counts.
// Both must be monotonically non-decreasing; the engine works on deltas.
type GoodTotal func() (good, total int64)

// HistogramTargetSource treats an observation at or under targetNs as good.
// Good is the cumulative histogram count through the first bucket whose
// upper bound is >= targetNs, read from one generation-consistent snapshot.
func HistogramTargetSource(h *Histogram, targetNs int64) GoodTotal {
	return func() (int64, int64) {
		if h == nil {
			return 0, 0
		}
		buckets, _, count := h.read(nil)
		var good int64
		for i, b := range h.bounds {
			good += buckets[i]
			if b >= targetNs {
				return good, count
			}
		}
		return count, count // target beyond the last bound: everything is good
	}
}

// CounterRatioSource reads good and total counters directly.
func CounterRatioSource(good, total *Counter) GoodTotal {
	return func() (int64, int64) {
		return good.Value(), total.Value()
	}
}

// CounterFailureSource derives good = total - bad from a failure counter.
func CounterFailureSource(bad, total *Counter) GoodTotal {
	return func() (int64, int64) {
		t := total.Value()
		g := t - bad.Value()
		if g < 0 {
			g = 0
		}
		return g, t
	}
}

// SumFailureSource derives goodness from several failure counters against a
// single total (e.g. lossy close reasons vs. sessions opened).
func SumFailureSource(total *Counter, bad ...*Counter) GoodTotal {
	return func() (int64, int64) {
		t := total.Value()
		g := t
		for _, b := range bad {
			g -= b.Value()
		}
		if g < 0 {
			g = 0
		}
		return g, t
	}
}

// Objective is one declared SLO.
type Objective struct {
	Name        string
	Description string
	Goal        float64 // target good ratio in (0,1), e.g. 0.99
	Source      GoodTotal
}

// WindowBurn is one window's view of an objective.
type WindowBurn struct {
	Window   time.Duration `json:"-"`
	WindowS  float64       `json:"window_s"`
	Good     int64         `json:"good"`
	Total    int64         `json:"total"`
	BadRatio float64       `json:"bad_ratio"`
	Burn     float64       `json:"burn"`
}

// ObjectiveStatus is one objective's full evaluation at the latest tick.
type ObjectiveStatus struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Goal        float64      `json:"goal"`
	Windows     []WindowBurn `json:"windows"`
	Burning     bool         `json:"burning"`
}

type sloBucket struct {
	good, total int64
}

// sloObjective is the engine's per-objective state: last cumulative sample
// plus a time-bucketed delta ring covering the longest window.
type sloObjective struct {
	obj                 Objective
	lastGood, lastTotal int64
	primed              bool
	ring                []sloBucket // one bucket per resolution step
	head                int         // ring index of the current bucket
	ratioG, burnG       []*FloatGauge
	burningG            *Gauge
	status              ObjectiveStatus
}

// SLOEngine holds the objectives and their rolling state. Tick is expected
// on a fixed cadence (Resolution); the serve maintenance loop drives it.
type SLOEngine struct {
	windows    []time.Duration
	resolution time.Duration
	alert      float64

	mu   sync.Mutex
	objs []*sloObjective
	last time.Time
}

// NewSLOEngine builds an engine evaluating over the given windows (sorted
// shortest-first by the caller; e.g. 30s, 2m, 10m) at the given tick
// resolution. burnAlert is the burn-rate threshold for Burning (a common
// choice is 2: budget consumed at twice the sustainable rate). Gauges are
// registered on reg if non-nil.
func NewSLOEngine(windows []time.Duration, resolution time.Duration, burnAlert float64) *SLOEngine {
	if len(windows) == 0 {
		windows = []time.Duration{30 * time.Second, 2 * time.Minute, 10 * time.Minute}
	}
	if resolution <= 0 {
		resolution = time.Second
	}
	if burnAlert <= 0 {
		burnAlert = 2
	}
	return &SLOEngine{windows: windows, resolution: resolution, alert: burnAlert}
}

// Windows returns the engine's evaluation windows.
func (e *SLOEngine) Windows() []time.Duration {
	if e == nil {
		return nil
	}
	return e.windows
}

// Add declares an objective. Gauge handles are resolved once here so Tick
// never touches the registry maps. reg may be nil (no metric export).
func (e *SLOEngine) Add(obj Objective, reg *Registry) {
	if e == nil {
		return
	}
	longest := e.windows[len(e.windows)-1]
	n := int(longest/e.resolution) + 1
	so := &sloObjective{
		obj:  obj,
		ring: make([]sloBucket, n),
	}
	so.status = ObjectiveStatus{
		Name:        obj.Name,
		Description: obj.Description,
		Goal:        obj.Goal,
		Windows:     make([]WindowBurn, len(e.windows)),
	}
	for i, w := range e.windows {
		so.status.Windows[i] = WindowBurn{Window: w, WindowS: w.Seconds()}
	}
	if reg != nil {
		for _, w := range e.windows {
			ws := w.String()
			so.ratioG = append(so.ratioG, reg.FloatGauge("slo."+obj.Name+".bad_ratio."+ws))
			so.burnG = append(so.burnG, reg.FloatGauge("slo."+obj.Name+".burn."+ws))
		}
		so.burningG = reg.Gauge("slo." + obj.Name + ".burning")
	} else {
		for range e.windows {
			so.ratioG = append(so.ratioG, nil)
			so.burnG = append(so.burnG, nil)
		}
	}
	e.mu.Lock()
	e.objs = append(e.objs, so)
	e.mu.Unlock()
}

// Tick samples every objective's source, advances the delta rings, and
// recomputes per-window burn rates. Call on the Resolution cadence; ticks
// arriving faster fold into the current bucket, a late tick advances the
// ring by however many buckets elapsed (zero-filling the gap).
func (e *SLOEngine) Tick(now time.Time) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	steps := 1
	if !e.last.IsZero() {
		steps = int(now.Sub(e.last) / e.resolution)
		if steps < 0 {
			steps = 0
		}
	}
	if steps > 0 {
		e.last = now
	}

	for _, so := range e.objs {
		good, total := so.obj.Source()
		var dGood, dTotal int64
		if so.primed {
			dGood, dTotal = good-so.lastGood, total-so.lastTotal
			if dGood < 0 {
				dGood = 0
			}
			if dTotal < 0 {
				dTotal = 0
			}
		}
		so.lastGood, so.lastTotal, so.primed = good, total, true

		for s := 0; s < steps && s < len(so.ring); s++ {
			so.head = (so.head + 1) % len(so.ring)
			so.ring[so.head] = sloBucket{}
		}
		so.ring[so.head].good += dGood
		so.ring[so.head].total += dTotal

		burningFast, burningSlow := false, false
		for wi, w := range e.windows {
			buckets := int(w / e.resolution)
			if buckets < 1 {
				buckets = 1
			}
			var g, t int64
			for b := 0; b < buckets && b < len(so.ring); b++ {
				idx := (so.head - b + len(so.ring)) % len(so.ring)
				g += so.ring[idx].good
				t += so.ring[idx].total
			}
			wb := &so.status.Windows[wi]
			wb.Good, wb.Total = g, t
			wb.BadRatio, wb.Burn = 0, 0
			if t > 0 {
				wb.BadRatio = float64(t-g) / float64(t)
				if so.obj.Goal < 1 {
					wb.Burn = wb.BadRatio / (1 - so.obj.Goal)
				}
			}
			if wb.Burn > e.alert {
				if wi == 0 {
					burningFast = true
				} else if wi == 1 {
					burningSlow = true
				}
			}
			so.ratioG[wi].Set(wb.BadRatio)
			so.burnG[wi].Set(wb.Burn)
		}
		so.status.Burning = burningFast && (len(e.windows) < 2 || burningSlow)
		if so.burningG != nil {
			if so.status.Burning {
				so.burningG.Set(1)
			} else {
				so.burningG.Set(0)
			}
		}
	}
}

// Burning reports whether any objective is currently burning its budget
// faster than the alert threshold on the two fastest windows.
func (e *SLOEngine) Burning() bool {
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, so := range e.objs {
		if so.status.Burning {
			return true
		}
	}
	return false
}

// Status returns a copy of every objective's latest evaluation.
func (e *SLOEngine) Status() []ObjectiveStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ObjectiveStatus, len(e.objs))
	for i, so := range e.objs {
		st := so.status
		st.Windows = append([]WindowBurn(nil), so.status.Windows...)
		out[i] = st
	}
	return out
}

// ServeHTTP exposes the engine at /slo.
func (e *SLOEngine) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	st := e.Status()
	if st == nil {
		st = []ObjectiveStatus{}
	}
	burning := e.Burning()
	enc.Encode(struct {
		Burning    bool              `json:"burning"`
		Objectives []ObjectiveStatus `json:"objectives"`
	}{Burning: burning, Objectives: st})
}
