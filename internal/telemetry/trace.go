package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records nested spans and exports them in the Chrome trace-event
// format, loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Span nesting is positional, exactly as the trace viewer renders it: spans
// sharing a track (tid) nest by time containment. Each root span claims a
// fresh track, and children inherit their parent's, so concurrent
// inferences land on separate rows while engine → layer → kernel spans
// stack within one.
//
// A nil *Tracer is fully disabled: Span/Child return a zero Span whose End
// is a no-op, with no time.Now call, no lock, and no allocation — the
// fast path verified by BenchmarkSpanDisabled.
type Tracer struct {
	start   time.Time
	nextTID atomic.Int64

	mu      sync.Mutex
	events  []traceEvent
	max     int
	dropped int64
}

// traceEvent is one completed span, timestamps relative to tracer start.
type traceEvent struct {
	name string
	tid  int64
	ts   time.Duration
	dur  time.Duration
}

// DefaultTraceCap bounds a tracer's retained events; spans beyond it are
// counted as dropped rather than growing without bound in an always-on
// process.
const DefaultTraceCap = 1 << 19

// NewTracer returns an enabled tracer retaining at most cap events
// (cap <= 0 selects DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{start: time.Now(), max: capacity}
}

// Span is one in-flight span. It is a value: starting and ending a span
// allocates nothing beyond the tracer's event storage.
type Span struct {
	t     *Tracer
	name  string
	tid   int64
	start time.Time
}

// Span opens a root span on a fresh track.
func (t *Tracer) Span(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, tid: t.nextTID.Add(1), start: time.Now()}
}

// Child opens a span on the parent's track; it renders nested under any
// enclosing span that contains it in time.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return Span{t: s.t, name: name, tid: s.tid, start: time.Now()}
}

// End completes the span, recording it on the tracer.
func (s Span) End() {
	if s.t == nil {
		return
	}
	dur := time.Since(s.start)
	t := s.t
	t.mu.Lock()
	if len(t.events) < t.max {
		t.events = append(t.events, traceEvent{
			name: s.name,
			tid:  s.tid,
			ts:   s.start.Sub(t.start),
			dur:  dur,
		})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many spans were discarded at the capacity limit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is the trace-event JSON schema ("X" = complete event,
// timestamps in microseconds).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int64   `json:"tid"`
}

// WriteJSON writes the recorded spans as a Chrome trace-event JSON object
// ({"traceEvents": [...]}). The tracer keeps recording; the export is a
// snapshot.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var evs []traceEvent
	if t != nil {
		t.mu.Lock()
		evs = append(evs, t.events...)
		t.mu.Unlock()
	}
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, len(evs))}
	for i, e := range evs {
		out.TraceEvents[i] = chromeEvent{
			Name: e.name,
			Ph:   "X",
			Ts:   float64(e.ts) / 1e3, // ns → µs
			Dur:  float64(e.dur) / 1e3,
			Pid:  1,
			Tid:  e.tid,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ---------------------------------------------------------------------------
// Hop traces: cross-goroutine, per-chunk trace contexts.
//
// Tracer spans are positional and single-goroutine; a chunk in the serve
// plane crosses three goroutines (session pump → lane coalescer → pump) and
// a span cannot follow it. A HopTrace can: it is a flat array of stage
// timestamps carried by pointer through the lane's request/reply channels,
// which give the necessary happens-before edges, then committed to a
// fixed-size TraceStore keyed by trace ID. Latency-histogram exemplars
// carry these IDs, so a p99 spike resolves to a concrete
// ingress→lane→infer→event timeline via /debug/trace?id=N.
// ---------------------------------------------------------------------------

// HopStage indexes the stamp array of a HopTrace; stages are stamped in
// pipeline order as a chunk moves from TCP ingress to event emission.
type HopStage uint8

const (
	HopIngress     HopStage = iota // chunk bytes read off the socket
	HopDequeue                     // session pump picked the chunk up
	HopClassify                    // detector handed the window to the classifier
	HopLaneSubmit                  // request enqueued on the shared lane
	HopLaneCollect                 // lane coalescer picked the request into a batch
	HopInferDone                   // batched SWAR inference returned
	HopReply                       // reply received back on the session pump
	HopDone                        // detector finished scoring the chunk
	HopEventEmit                   // keyword event delivered to the subscriber
	NumHopStages
)

var hopStageNames = [NumHopStages]string{
	"ingress", "dequeue", "classify", "lane_submit", "lane_collect",
	"infer_done", "reply", "done", "event_emit",
}

// String names the stage as it appears in /debug/trace output.
func (s HopStage) String() string {
	if int(s) < len(hopStageNames) {
		return hopStageNames[s]
	}
	return "unknown"
}

// HopTrace is one chunk's journey: a stamp (ns since TraceStore start) per
// stage, 0 meaning the stage was not reached. It is carried by pointer and
// mutated by whichever goroutine currently owns the chunk; ownership is
// handed over through channels, so no stamp write races another.
type HopTrace struct {
	ID      uint64
	Session string
	Stamp   [NumHopStages]int64
}

type traceSlot struct {
	mu sync.Mutex
	tr HopTrace
}

// TraceStore retains the most recent committed hop traces in a fixed-size
// ring keyed by trace ID. Begin and Commit are allocation-free; a nil
// *TraceStore disables tracing at the cost of a pointer compare.
type TraceStore struct {
	start  time.Time
	nextID atomic.Uint64
	slots  []traceSlot
	mask   uint64
}

// NewTraceStore returns a store retaining the most recent `capacity`
// committed traces (rounded up to a power of two; <= 0 selects 4096).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = 4096
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &TraceStore{start: time.Now(), slots: make([]traceSlot, n), mask: uint64(n - 1)}
}

// Now returns the store's monotonic clock in nanoseconds; stamps use this
// timebase. Returns 0 on a nil store.
func (ts *TraceStore) Now() int64 {
	if ts == nil {
		return 0
	}
	return int64(time.Since(ts.start))
}

// At converts an absolute time into the store's timebase (for stamping a
// stage with a time captured earlier, e.g. socket ingress).
func (ts *TraceStore) At(t time.Time) int64 {
	if ts == nil {
		return 0
	}
	return int64(t.Sub(ts.start))
}

// Begin initialises tr for a fresh chunk: assigns the next trace ID, zeroes
// the stamps. The caller owns tr until Commit.
func (ts *TraceStore) Begin(tr *HopTrace, session string) {
	if ts == nil {
		return
	}
	tr.ID = ts.nextID.Add(1)
	tr.Session = session
	clear(tr.Stamp[:])
}

// Commit publishes a finished trace into the ring. Slow commits never
// clobber a newer trace that already wrapped onto the slot.
func (ts *TraceStore) Commit(tr *HopTrace) {
	if ts == nil || tr.ID == 0 {
		return
	}
	s := &ts.slots[tr.ID&ts.mask]
	s.mu.Lock()
	if tr.ID > s.tr.ID {
		s.tr = *tr
	}
	s.mu.Unlock()
}

// Get returns the committed trace with the given ID, or ok=false if it was
// never committed or has been evicted by ring wraparound.
func (ts *TraceStore) Get(id uint64) (HopTrace, bool) {
	if ts == nil || id == 0 {
		return HopTrace{}, false
	}
	s := &ts.slots[id&ts.mask]
	s.mu.Lock()
	tr := s.tr
	s.mu.Unlock()
	return tr, tr.ID == id
}

// hopTraceJSON is the /debug/trace schema: stamps keyed by stage name,
// omitting unreached stages, plus the end-to-end duration.
type hopTraceJSON struct {
	ID      uint64           `json:"id"`
	Session string           `json:"session"`
	Stages  map[string]int64 `json:"stages_ns"`
	E2ENs   int64            `json:"e2e_ns"`
}

func hopJSON(tr HopTrace) hopTraceJSON {
	out := hopTraceJSON{ID: tr.ID, Session: tr.Session, Stages: make(map[string]int64, NumHopStages)}
	var first, last int64
	for i, v := range tr.Stamp {
		if v == 0 {
			continue
		}
		out.Stages[HopStage(i).String()] = v
		if first == 0 || v < first {
			first = v
		}
		if v > last {
			last = v
		}
	}
	out.E2ENs = last - first
	return out
}

// ServeHTTP exposes the store at /debug/trace: ?id=N resolves one trace
// (404 if evicted); with no id, the most recent committed traces are
// returned newest-first (bounded by ?limit, default 64).
func (ts *TraceStore) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		tr, ok := ts.Get(id)
		if !ok {
			http.Error(w, "trace not found (never committed or evicted)", http.StatusNotFound)
			return
		}
		enc.Encode(hopJSON(tr))
		return
	}
	limit := 64
	if ls := r.URL.Query().Get("limit"); ls != "" {
		if n, err := strconv.Atoi(ls); err == nil && n > 0 {
			limit = n
		}
	}
	var traces []hopTraceJSON
	if ts != nil {
		latest := ts.nextID.Load()
		for id := latest; id > 0 && len(traces) < limit && id+uint64(len(ts.slots)) > latest; id-- {
			if tr, ok := ts.Get(id); ok {
				traces = append(traces, hopJSON(tr))
			}
		}
	}
	enc.Encode(struct {
		Traces []hopTraceJSON `json:"traces"`
	}{Traces: traces})
}
