package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer records nested spans and exports them in the Chrome trace-event
// format, loadable in chrome://tracing or https://ui.perfetto.dev.
//
// Span nesting is positional, exactly as the trace viewer renders it: spans
// sharing a track (tid) nest by time containment. Each root span claims a
// fresh track, and children inherit their parent's, so concurrent
// inferences land on separate rows while engine → layer → kernel spans
// stack within one.
//
// A nil *Tracer is fully disabled: Span/Child return a zero Span whose End
// is a no-op, with no time.Now call, no lock, and no allocation — the
// fast path verified by BenchmarkSpanDisabled.
type Tracer struct {
	start   time.Time
	nextTID atomic.Int64

	mu      sync.Mutex
	events  []traceEvent
	max     int
	dropped int64
}

// traceEvent is one completed span, timestamps relative to tracer start.
type traceEvent struct {
	name string
	tid  int64
	ts   time.Duration
	dur  time.Duration
}

// DefaultTraceCap bounds a tracer's retained events; spans beyond it are
// counted as dropped rather than growing without bound in an always-on
// process.
const DefaultTraceCap = 1 << 19

// NewTracer returns an enabled tracer retaining at most cap events
// (cap <= 0 selects DefaultTraceCap).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{start: time.Now(), max: capacity}
}

// Span is one in-flight span. It is a value: starting and ending a span
// allocates nothing beyond the tracer's event storage.
type Span struct {
	t     *Tracer
	name  string
	tid   int64
	start time.Time
}

// Span opens a root span on a fresh track.
func (t *Tracer) Span(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, tid: t.nextTID.Add(1), start: time.Now()}
}

// Child opens a span on the parent's track; it renders nested under any
// enclosing span that contains it in time.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return Span{t: s.t, name: name, tid: s.tid, start: time.Now()}
}

// End completes the span, recording it on the tracer.
func (s Span) End() {
	if s.t == nil {
		return
	}
	dur := time.Since(s.start)
	t := s.t
	t.mu.Lock()
	if len(t.events) < t.max {
		t.events = append(t.events, traceEvent{
			name: s.name,
			tid:  s.tid,
			ts:   s.start.Sub(t.start),
			dur:  dur,
		})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many spans were discarded at the capacity limit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is the trace-event JSON schema ("X" = complete event,
// timestamps in microseconds).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int64   `json:"tid"`
}

// WriteJSON writes the recorded spans as a Chrome trace-event JSON object
// ({"traceEvents": [...]}). The tracer keeps recording; the export is a
// snapshot.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var evs []traceEvent
	if t != nil {
		t.mu.Lock()
		evs = append(evs, t.events...)
		t.mu.Unlock()
	}
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, len(evs))}
	for i, e := range evs {
		out.TraceEvents[i] = chromeEvent{
			Name: e.name,
			Ph:   "X",
			Ts:   float64(e.ts) / 1e3, // ns → µs
			Dur:  float64(e.dur) / 1e3,
			Pid:  1,
			Tid:  e.tid,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
