package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name must return the same counter")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.SetMax(5)
	if g.Value() != 7 {
		t.Fatal("SetMax lowered the gauge")
	}
	g.SetMax(42)
	if g.Value() != 42 {
		t.Fatal("SetMax did not raise the gauge")
	}
	f := r.FloatGauge("f")
	f.Set(0.125)
	if f.Value() != 0.125 {
		t.Fatalf("float gauge = %g, want 0.125", f.Value())
	}
}

// TestNilInstrumentsNoOp: disabled telemetry is nil pointers all the way
// down; every operation must be callable and inert.
func TestNilInstrumentsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	g := r.Gauge("x")
	g.Set(1)
	g.SetMax(2)
	var f *FloatGauge
	f.Set(1)
	h := r.Histogram("x", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded something")
	}
	var l *Logger
	l.Info("dropped")
	l.With("still-nil").Error("dropped", "k", 1)
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	for i := 0; i < 50; i++ {
		h.Observe(5) // bucket ≤10
	}
	for i := 0; i < 45; i++ {
		h.Observe(50) // bucket ≤100
	}
	for i := 0; i < 5; i++ {
		h.Observe(5000) // overflow bucket
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Quantile(0.50); got != 10 {
		t.Fatalf("p50 = %d, want 10", got)
	}
	if got := h.Quantile(0.95); got != 100 {
		t.Fatalf("p95 = %d, want 100", got)
	}
	// p99 lands in the overflow bucket, which reports the largest bound.
	if got := h.Quantile(0.99); got != 1000 {
		t.Fatalf("p99 = %d, want 1000", got)
	}
	s := h.Snapshot(true)
	if s.Count != 100 || s.Sum != 50*5+45*50+5*5000 {
		t.Fatalf("snapshot count/sum = %d/%d", s.Count, s.Sum)
	}
	if len(s.Buckets) != 4 || s.Buckets[3] != 5 {
		t.Fatalf("snapshot buckets = %v", s.Buckets)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(LatencyBuckets())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.infers").Add(3)
	r.Gauge("engine.arena.bytes").Set(4096)
	r.FloatGauge("train.loss").Set(0.5)
	r.LatencyHistogram("engine.infer.ns").Observe(1500)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"engine.infers 3",
		"engine.arena.bytes 4096",
		"train.loss 0.5",
		"engine.infer.ns_count 1",
		"engine.infer.ns_p99 2500",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"engine.infers": 3`) {
		t.Fatalf("JSON output missing counter:\n%s", js.String())
	}
}

func TestRegistryConcurrentLookup(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("shared").Inc()
				r.LatencyHistogram("lat").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 1600 {
		t.Fatalf("shared counter = %d, want 1600", got)
	}
}

// TestHistogramSnapshotConsistency is the satellite-2 hammer: writers
// observe a fixed value while readers snapshot concurrently; every snapshot
// must be internally consistent — sum == count*v and the bucket totals must
// equal the count — which only holds if count, sum and buckets come from
// one generation.
func TestHistogramSnapshotConsistency(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	const v = 50
	const writers = 4
	const perWriter = 20000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(v)
			}
		}()
	}

	var readers sync.WaitGroup
	for rdr := 0; rdr < 3; rdr++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := h.Snapshot(true)
				if s.Sum != s.Count*v {
					t.Errorf("inconsistent snapshot: count=%d sum=%d (want %d)", s.Count, s.Sum, s.Count*v)
					return
				}
				var bt int64
				for _, b := range s.Buckets {
					bt += b
				}
				if bt != s.Count {
					t.Errorf("bucket total %d != count %d", bt, s.Count)
					return
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	final := h.Snapshot(true)
	if final.Count != writers*perWriter || final.Sum != int64(writers*perWriter*v) {
		t.Fatalf("final snapshot: %+v", final)
	}
}

// TestHistogramExemplars checks ObserveTrace attaches trace IDs to the
// right buckets and the JSON snapshot carries them.
func TestHistogramExemplars(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	h.ObserveTrace(5, 101)    // bucket 0
	h.ObserveTrace(500, 202)  // bucket 2
	h.ObserveTrace(5000, 303) // overflow bucket
	h.ObserveTrace(7, 0)      // zero trace ID: must not clobber

	s := h.Snapshot(true)
	if len(s.Exemplars) != len(s.Buckets) {
		t.Fatalf("exemplars len %d, buckets len %d", len(s.Exemplars), len(s.Buckets))
	}
	want := []uint64{101, 0, 202, 303}
	for i, w := range want {
		if s.Exemplars[i] != w {
			t.Errorf("exemplar[%d] = %d, want %d", i, s.Exemplars[i], w)
		}
	}
}
