// Command kws-train trains one of the repository's keyword-spotting
// architectures on the synthetic speech-commands corpus and saves the
// trained parameters to a gob file for kws-infer. With -telemetry-addr the
// run exposes live training metrics — per-epoch loss, held-out accuracy,
// throughput, shard-reduction latency, feature-cache hits — plus pprof.
//
// Usage:
//
//	kws-train -model st-hybrid -out model.gob
//	kws-train -model dscnn -width 0.5 -epochs 40
//	kws-train -workers 4 -cache feat.thfc   # data-parallel, cached features
//	kws-train -telemetry-addr :8080         # watch the run converge live
//
// Models: dscnn, st-dscnn, cnn, dnn, lstm, basic-lstm, gru, crnn, hybrid,
// st-hybrid.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/speechcmd"
	"repro/internal/telemetry"
	"repro/internal/train"
)

func main() {
	model := flag.String("model", "st-hybrid", "architecture to train")
	width := flag.Float64("width", 0.25, "model width multiplier")
	samples := flag.Int("samples", 80, "synthetic corpus samples per class")
	epochs := flag.Int("epochs", 30, "epochs (per stage, for strassenified models)")
	seed := flag.Int64("seed", 1, "seed")
	out := flag.String("out", "", "write trained parameters to this file")
	confusion := flag.Bool("confusion", false, "print the test-set confusion matrix and per-class stats")
	workers := flag.Int("workers", 0, "data-parallel training workers (0 = serial)")
	shards := flag.Int("shards", 0, "per-batch gradient shards (0 = default; fixes the parallel reduction order)")
	cache := flag.String("cache", "", "feature cache file; reused when valid, regenerated otherwise")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address while training (empty disables)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	flag.Parse()

	log := telemetry.NewLogger(os.Stderr, telemetry.ParseLevel(*logLevel), "kws-train")

	var reg *telemetry.Registry
	if *telemetryAddr != "" {
		reg = telemetry.Default
		srv := telemetry.NewServer(reg, nil)
		addr, err := srv.Start(*telemetryAddr)
		if err != nil {
			fatal(log, fmt.Errorf("telemetry server: %w", err))
		}
		defer srv.Close()
		log.Info("telemetry server listening", "addr", addr)
	}

	dsCfg := speechcmd.DefaultConfig()
	dsCfg.SamplesPerCls = *samples
	dsCfg.Seed = *seed
	var ds *speechcmd.Dataset
	if *cache != "" {
		start := time.Now()
		d, warm, err := speechcmd.GenerateCached(dsCfg, *cache)
		if err != nil {
			fatal(log, err)
		}
		state := "cold (generated + cached)"
		if warm {
			state = "warm"
		}
		log.Info("feature cache loaded", "path", *cache, "state", state, "elapsed", time.Since(start).Round(time.Millisecond))
		ds = d
	} else {
		log.Info("generating corpus", "samples_per_class", *samples)
		ds = speechcmd.Generate(dsCfg)
	}
	x, y := speechcmd.Batch(ds.Train, 0, len(ds.Train))
	vx, vy := speechcmd.Batch(ds.Val, 0, len(ds.Val))
	tx, ty := speechcmd.Batch(ds.Test, 0, len(ds.Test))

	rng := rand.New(rand.NewSource(*seed))
	var m nn.Layer
	loss := train.CrossEntropy
	staged := false
	var hybrid *core.Hybrid
	switch *model {
	case "dscnn":
		m = models.NewDSCNN(speechcmd.NumClasses, *width, rng)
	case "st-dscnn":
		m = models.NewSTDSCNN(speechcmd.NumClasses, *width, 0.75, rng)
		staged = true
	case "cnn":
		m = models.NewCNN(speechcmd.NumClasses, *width, rng)
	case "dnn":
		m = models.NewDNN(speechcmd.NumClasses, *width, rng)
	case "lstm":
		m = models.NewLSTMModel(speechcmd.NumClasses, *width, rng)
	case "basic-lstm":
		m = models.NewBasicLSTM(speechcmd.NumClasses, *width, rng)
	case "gru":
		m = models.NewGRUModel(speechcmd.NumClasses, *width, rng)
	case "crnn":
		m = models.NewCRNN(speechcmd.NumClasses, *width, rng)
	case "hybrid", "st-hybrid":
		cfg := core.DefaultConfig(speechcmd.NumClasses)
		cfg.WidthMult = *width
		cfg.Strassen = *model == "st-hybrid"
		hybrid = core.New(cfg, rng)
		m = hybrid
		loss = train.MultiClassHinge
		staged = cfg.Strassen
	default:
		fatal(log, fmt.Errorf("unknown model %q", *model))
	}

	cfg := train.Config{
		Epochs:    *epochs,
		BatchSize: 20,
		Schedule:  train.StepSchedule{Base: 0.01, Every: *epochs/2 + 1, Factor: 0.3},
		Loss:      loss,
		Seed:      *seed,
		Workers:   *workers,
		Shards:    *shards,
		Log:       os.Stderr,
		Obs:       train.NewObs(reg),
		EvalX:     vx,
		EvalY:     vy,
	}
	if hybrid != nil {
		total := *epochs
		if staged {
			total = 3 * *epochs
		}
		cfg.OnEpoch = func(epoch int, l float64) {
			hybrid.AnnealSigma(float64(epoch)/float64(total), 8)
		}
	}
	if staged {
		train.RunStaged(m, x, y, train.StagedConfig{
			Base: cfg, WarmupEpochs: *epochs, QuantEpochs: *epochs, FixedEpochs: *epochs,
		})
	} else {
		train.Run(m, x, y, cfg)
	}

	fmt.Printf("model=%s width=%.2f params=%d\n", *model, *width, nn.NumParams(m))
	fmt.Printf("val accuracy:  %.4f\n", train.Accuracy(m, vx, vy, 64))
	fmt.Printf("test accuracy: %.4f\n", train.Accuracy(m, tx, ty, 64))

	if *confusion {
		pred := m.Forward(tx, false).ArgmaxRows()
		cm := metrics.NewConfusion(speechcmd.NumClasses)
		cm.AddAll(ty, pred)
		fmt.Println()
		fmt.Print(cm.Render(speechcmd.ClassNames()))
		if top := cm.TopConfusions(3); len(top) > 0 {
			names := speechcmd.ClassNames()
			fmt.Println("most frequent mistakes:")
			for _, p := range top {
				fmt.Printf("  %s -> %s (%d times)\n", names[p[0]], names[p[1]], p[2])
			}
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(log, err)
		}
		defer f.Close()
		if err := nn.SaveParams(f, m); err != nil {
			fatal(log, fmt.Errorf("writing %s: %w", *out, err))
		}
		fmt.Printf("saved parameters to %s\n", *out)
	}
}

func fatal(log *telemetry.Logger, err error) {
	log.Error(err.Error())
	os.Exit(1)
}
