// Command kws-infer synthesises an utterance of a chosen keyword, runs the
// MFCC front end and a (freshly trained or loaded) ST-HybridNet over it, and
// prints the classification together with the decision path through the
// Bonsai tree — a small end-to-end demonstration of the paper's pipeline.
// With -telemetry-addr the run exposes live /metrics and /healthz while it
// lasts; -trace-out records the packed engine's per-layer spans.
//
// Usage:
//
//	kws-infer -word yes                    # train a small model, then infer
//	kws-infer -word stop -params model.gob -width 0.25
//	kws-infer -engine model.thnt -trace-out trace.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/dsp"
	"repro/internal/nn"
	"repro/internal/speechcmd"
	"repro/internal/telemetry"
	"repro/internal/train"
)

func main() {
	word := flag.String("word", "yes", `keyword to synthesise ("silence" for background noise)`)
	wavIn := flag.String("wav", "", "classify this mono 16-bit PCM WAV file instead of synthesising")
	wavOut := flag.String("savewav", "", "also write the synthesised utterance to this WAV file")
	params := flag.String("params", "", "load trained st-hybrid parameters from this file (else train quickly)")
	engine := flag.String("engine", "", "classify with this packed integer model (.thnt); falls back to the float model if it fails validation")
	int8Pol := flag.Bool("int8", false, "run the packed engine fully 8-bit (PolicyInt8), overriding the model's stored policy")
	mixedPol := flag.Bool("mixed", false, "pin the packed engine to the mixed 8/16-bit policy, overriding the model's stored policy")
	width := flag.Float64("width", 0.25, "model width multiplier (must match saved params)")
	epochs := flag.Int("epochs", 12, "epochs per stage when training in-process")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address for the run's duration (empty disables)")
	traceOut := flag.String("trace-out", "", "write engine spans to this Chrome trace-event JSON file on exit")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	log := telemetry.NewLogger(os.Stderr, telemetry.ParseLevel(*logLevel), "kws-infer")

	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	if *telemetryAddr != "" || *traceOut != "" {
		reg = telemetry.Default
	}
	if *traceOut != "" {
		tracer = telemetry.NewTracer(0)
	}

	cfg := core.DefaultConfig(speechcmd.NumClasses)
	cfg.WidthMult = *width
	h := core.New(cfg, rand.New(rand.NewSource(*seed)))

	if *params != "" {
		f, err := os.Open(*params)
		if err != nil {
			fatal(log, err)
		}
		if err := nn.LoadParams(f, h); err != nil {
			fatal(log, err)
		}
		f.Close()
		log.Info("loaded parameters", "path", *params)
	} else {
		log.Info("no -params given: training a small ST-HybridNet in-process", "epochs_per_stage", *epochs)
		dsCfg := speechcmd.DefaultConfig()
		dsCfg.SamplesPerCls = 40
		dsCfg.Seed = *seed
		ds := speechcmd.Generate(dsCfg)
		x, y := speechcmd.Batch(ds.Train, 0, len(ds.Train))
		base := train.Config{
			BatchSize: 20,
			Schedule:  train.StepSchedule{Base: 0.01, Every: *epochs/2 + 1, Factor: 0.3},
			Loss:      train.MultiClassHinge,
			Seed:      *seed,
			Obs:       train.NewObs(reg),
			OnEpoch: func(epoch int, loss float64) {
				h.AnnealSigma(float64(epoch)/float64(3**epochs), 8)
			},
		}
		train.RunStaged(h, x, y, train.StagedConfig{
			Base: base, WarmupEpochs: *epochs, QuantEpochs: *epochs, FixedEpochs: *epochs,
		})
		tx, ty := speechcmd.Batch(ds.Test, 0, len(ds.Test))
		log.Info("model trained", "test_accuracy", train.Accuracy(h, tx, ty, 64))
	}

	// Obtain the utterance: either a real recording or a synthetic one.
	scCfg := speechcmd.DefaultConfig()
	var wave []float64
	if *wavIn != "" {
		f, err := os.Open(*wavIn)
		if err != nil {
			fatal(log, err)
		}
		samples, rate, err := audio.ReadWAV(f)
		f.Close()
		if err != nil {
			fatal(log, err)
		}
		wave = audio.Resample(samples, rate, scCfg.SampleRate)
		if len(wave) < scCfg.SampleRate {
			wave = append(wave, make([]float64, scCfg.SampleRate-len(wave))...)
		}
		wave = wave[:scCfg.SampleRate]
	} else {
		synthWord := *word
		if synthWord == "silence" {
			synthWord = ""
		}
		wave = speechcmd.SynthesizeUtterance(synthWord, scCfg, rand.New(rand.NewSource(*seed+42)))
		if *wavOut != "" {
			f, err := os.Create(*wavOut)
			if err != nil {
				fatal(log, err)
			}
			if err := audio.WriteWAV(f, wave, scCfg.SampleRate); err != nil {
				fatal(log, fmt.Errorf("writing %s: %w", *wavOut, err))
			}
			f.Close()
			log.Info("wrote utterance", "path", *wavOut)
		}
	}
	mfcc := dsp.NewMFCC(dsp.DefaultMFCCConfig(scCfg.SampleRate))
	feat := mfcc.Compute(wave)
	x := feat.Reshape(1, feat.Size())

	// Degraded-mode classification: prefer the packed integer engine when one
	// is given and healthy; on any load, validation or inference fault, warn
	// and fall back to the float model so the tool still answers.
	var eng *deploy.Engine
	if *engine != "" {
		f, err := os.Open(*engine)
		if err != nil {
			log.Warn("cannot open integer engine; falling back to the float model", "err", err)
		} else {
			eng, err = deploy.ReadEngine(f)
			f.Close()
			if err != nil {
				log.Warn("integer engine rejected; falling back to the float model", "err", err)
				eng = nil
			}
		}
	}
	if eng != nil {
		// Policy flags override whatever a v3 model stored.
		if *int8Pol {
			eng.Policy = deploy.PolicyInt8
		} else if *mixedPol {
			eng.Policy = deploy.PolicyMixed
		}
		log.Info("engine activation policy", "policy", eng.Policy.String())
		if reg != nil {
			eng.EnableTelemetry(reg, tracer)
		}
	}

	var srv *telemetry.Server
	if *telemetryAddr != "" {
		srv = telemetry.NewServer(reg, tracer)
		if eng != nil {
			srv.AddCheck("engine", eng.Validate)
		}
		addr, err := srv.Start(*telemetryAddr)
		if err != nil {
			fatal(log, fmt.Errorf("telemetry server: %w", err))
		}
		defer srv.Close()
		log.Info("telemetry server listening", "addr", addr)
	}

	names := speechcmd.ClassNames()
	logits := h.Forward(x, false)
	pred := logits.ArgmaxRows()[0]
	fmt.Printf("\nsynthesised word: %q\n", *word)
	usedEngine := false
	if eng != nil {
		scores, intPred, err := eng.InferSafe(feat.Data)
		if err != nil {
			log.Warn("integer engine inference failed; falling back to the float model", "err", err)
		} else {
			usedEngine = true
			pred = intPred
			fmt.Printf("prediction:       %q (integer engine)\n\n", names[pred])
			fmt.Println("integer class scores:")
			for i, n := range names {
				marker := "  "
				if i == pred {
					marker = "->"
				}
				fmt.Printf("  %s %-8s %8d\n", marker, n, scores[i])
			}
		}
	}
	if !usedEngine {
		fmt.Printf("prediction:       %q\n\n", names[pred])
		fmt.Println("class scores:")
		for i, n := range names {
			marker := "  "
			if i == pred {
				marker = "->"
			}
			fmt.Printf("  %s %-8s %8.3f\n", marker, n, logits.At(0, i))
		}
	}

	// Show the Bonsai decision path: the conv front end runs first, then the
	// tree reports its most probable root-to-leaf traversal.
	convOut := x
	for _, l := range h.Sequential.Layers[:len(h.Sequential.Layers)-1] {
		convOut = l.Forward(convOut, false)
	}
	path, inds := h.Tree.PathTrace(convOut)
	fmt.Println("\nBonsai decision path (node index: indicator weight):")
	for i, node := range path {
		kind := "internal"
		if node >= h.Tree.Cfg.NumInternal() {
			kind = "leaf"
		}
		fmt.Printf("  depth %d: node %d (%s), I=%.3f\n", i, node, kind, inds[i])
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(log, fmt.Errorf("creating trace file: %w", err))
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			fatal(log, fmt.Errorf("writing %s: %w", *traceOut, err))
		}
		if err := f.Close(); err != nil {
			fatal(log, fmt.Errorf("closing %s: %w", *traceOut, err))
		}
		log.Info("trace written", "path", *traceOut, "spans", tracer.Len(), "dropped", tracer.Dropped())
	}
}

func fatal(log *telemetry.Logger, err error) {
	log.Error(err.Error())
	os.Exit(1)
}
