// Command kws-infer synthesises an utterance of a chosen keyword, runs the
// MFCC front end and a (freshly trained or loaded) ST-HybridNet over it, and
// prints the classification together with the decision path through the
// Bonsai tree — a small end-to-end demonstration of the paper's pipeline.
//
// Usage:
//
//	kws-infer -word yes                    # train a small model, then infer
//	kws-infer -word stop -params model.gob -width 0.25
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/audio"
	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/dsp"
	"repro/internal/nn"
	"repro/internal/speechcmd"
	"repro/internal/train"
)

func main() {
	word := flag.String("word", "yes", `keyword to synthesise ("silence" for background noise)`)
	wavIn := flag.String("wav", "", "classify this mono 16-bit PCM WAV file instead of synthesising")
	wavOut := flag.String("savewav", "", "also write the synthesised utterance to this WAV file")
	params := flag.String("params", "", "load trained st-hybrid parameters from this file (else train quickly)")
	engine := flag.String("engine", "", "classify with this packed integer model (.thnt); falls back to the float model if it fails validation")
	width := flag.Float64("width", 0.25, "model width multiplier (must match saved params)")
	epochs := flag.Int("epochs", 12, "epochs per stage when training in-process")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	cfg := core.DefaultConfig(speechcmd.NumClasses)
	cfg.WidthMult = *width
	h := core.New(cfg, rand.New(rand.NewSource(*seed)))

	if *params != "" {
		f, err := os.Open(*params)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := nn.LoadParams(f, h); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "loaded parameters from %s\n", *params)
	} else {
		fmt.Fprintln(os.Stderr, "no -params given: training a small ST-HybridNet in-process...")
		dsCfg := speechcmd.DefaultConfig()
		dsCfg.SamplesPerCls = 40
		dsCfg.Seed = *seed
		ds := speechcmd.Generate(dsCfg)
		x, y := speechcmd.Batch(ds.Train, 0, len(ds.Train))
		base := train.Config{
			BatchSize: 20,
			Schedule:  train.StepSchedule{Base: 0.01, Every: *epochs/2 + 1, Factor: 0.3},
			Loss:      train.MultiClassHinge,
			Seed:      *seed,
			OnEpoch: func(epoch int, loss float64) {
				h.AnnealSigma(float64(epoch)/float64(3**epochs), 8)
			},
		}
		train.RunStaged(h, x, y, train.StagedConfig{
			Base: base, WarmupEpochs: *epochs, QuantEpochs: *epochs, FixedEpochs: *epochs,
		})
		tx, ty := speechcmd.Batch(ds.Test, 0, len(ds.Test))
		fmt.Fprintf(os.Stderr, "test accuracy: %.4f\n", train.Accuracy(h, tx, ty, 64))
	}

	// Obtain the utterance: either a real recording or a synthetic one.
	scCfg := speechcmd.DefaultConfig()
	var wave []float64
	if *wavIn != "" {
		f, err := os.Open(*wavIn)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		samples, rate, err := audio.ReadWAV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wave = audio.Resample(samples, rate, scCfg.SampleRate)
		if len(wave) < scCfg.SampleRate {
			wave = append(wave, make([]float64, scCfg.SampleRate-len(wave))...)
		}
		wave = wave[:scCfg.SampleRate]
	} else {
		synthWord := *word
		if synthWord == "silence" {
			synthWord = ""
		}
		wave = speechcmd.SynthesizeUtterance(synthWord, scCfg, rand.New(rand.NewSource(*seed+42)))
		if *wavOut != "" {
			f, err := os.Create(*wavOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := audio.WriteWAV(f, wave, scCfg.SampleRate); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote utterance to %s\n", *wavOut)
		}
	}
	mfcc := dsp.NewMFCC(dsp.DefaultMFCCConfig(scCfg.SampleRate))
	feat := mfcc.Compute(wave)
	x := feat.Reshape(1, feat.Size())

	// Degraded-mode classification: prefer the packed integer engine when one
	// is given and healthy; on any load, validation or inference fault, warn
	// and fall back to the float model so the tool still answers.
	var eng *deploy.Engine
	if *engine != "" {
		f, err := os.Open(*engine)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: cannot open integer engine: %v; falling back to the float model\n", err)
		} else {
			eng, err = deploy.ReadEngine(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "warning: integer engine rejected (%v); falling back to the float model\n", err)
				eng = nil
			}
		}
	}

	names := speechcmd.ClassNames()
	logits := h.Forward(x, false)
	pred := logits.ArgmaxRows()[0]
	fmt.Printf("\nsynthesised word: %q\n", *word)
	usedEngine := false
	if eng != nil {
		scores, intPred, err := eng.InferSafe(feat.Data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: integer engine inference failed (%v); falling back to the float model\n", err)
		} else {
			usedEngine = true
			pred = intPred
			fmt.Printf("prediction:       %q (integer engine)\n\n", names[pred])
			fmt.Println("integer class scores:")
			for i, n := range names {
				marker := "  "
				if i == pred {
					marker = "->"
				}
				fmt.Printf("  %s %-8s %8d\n", marker, n, scores[i])
			}
		}
	}
	if !usedEngine {
		fmt.Printf("prediction:       %q\n\n", names[pred])
		fmt.Println("class scores:")
		for i, n := range names {
			marker := "  "
			if i == pred {
				marker = "->"
			}
			fmt.Printf("  %s %-8s %8.3f\n", marker, n, logits.At(0, i))
		}
	}

	// Show the Bonsai decision path: the conv front end runs first, then the
	// tree reports its most probable root-to-leaf traversal.
	convOut := x
	for _, l := range h.Sequential.Layers[:len(h.Sequential.Layers)-1] {
		convOut = l.Forward(convOut, false)
	}
	path, inds := h.Tree.PathTrace(convOut)
	fmt.Println("\nBonsai decision path (node index: indicator weight):")
	for i, node := range path {
		kind := "internal"
		if node >= h.Tree.Cfg.NumInternal() {
			kind = "leaf"
		}
		fmt.Printf("  depth %d: node %d (%s), I=%.3f\n", i, node, kind, inds[i])
	}
}
