// Command kws-deploy compiles a trained ST-HybridNet into the packed
// integer model format (.thnt) and verifies the integer engine against the
// float model on the test split — the repository's microcontroller
// deployment path. The stored activation policy is selectable (-int8 /
// -mixed), and the tool prints the paper's footprint comparison (model file
// plus steady-state activation scratch, float vs mixed vs fully-8-bit)
// together with the per-layer calibration records behind the requantisation
// constants.
//
// Usage:
//
//	kws-deploy -out model.thnt                  # train in-process, compile, verify
//	kws-deploy -params model.gob -out model.thnt -width 0.25
//	kws-deploy -int8 -out model8.thnt           # ship the fully-8-bit policy
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/speechcmd"
	"repro/internal/train"
)

func main() {
	params := flag.String("params", "", "load trained st-hybrid parameters (gob from kws-train)")
	out := flag.String("out", "model.thnt", "output path for the packed integer model")
	width := flag.Float64("width", 0.25, "model width multiplier (must match saved params)")
	samples := flag.Int("samples", 60, "corpus samples per class (training and calibration)")
	epochs := flag.Int("epochs", 18, "epochs per stage when training in-process")
	int8Pol := flag.Bool("int8", false, "store the fully-8-bit activation policy in the artifact (default: mixed 8/16-bit)")
	calibOut := flag.Bool("calib", true, "print the per-layer calibration records (bit widths and scales)")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	dsCfg := speechcmd.DefaultConfig()
	dsCfg.SamplesPerCls = *samples
	dsCfg.Seed = *seed
	fmt.Fprintln(os.Stderr, "generating corpus...")
	ds := speechcmd.Generate(dsCfg)
	x, y := speechcmd.Batch(ds.Train, 0, len(ds.Train))
	tx, ty := speechcmd.Batch(ds.Test, 0, len(ds.Test))

	cfg := core.DefaultConfig(speechcmd.NumClasses)
	cfg.WidthMult = *width
	h := core.New(cfg, rand.New(rand.NewSource(*seed)))

	if *params != "" {
		f, err := os.Open(*params)
		if err != nil {
			fatal(err)
		}
		if err := nn.LoadParams(f, h); err != nil {
			fatal(err)
		}
		f.Close()
	} else {
		fmt.Fprintln(os.Stderr, "training ST-HybridNet through the staged schedule...")
		base := train.Config{
			BatchSize: 20,
			Schedule:  train.StepSchedule{Base: 0.01, Every: *epochs/2 + 1, Factor: 0.3},
			Loss:      train.MultiClassHinge,
			Seed:      *seed,
			OnEpoch: func(epoch int, loss float64) {
				h.AnnealSigma(float64(epoch)/float64(3**epochs), 8)
			},
		}
		train.RunStaged(h, x, y, train.StagedConfig{
			Base: base, WarmupEpochs: *epochs, QuantEpochs: *epochs, FixedEpochs: *epochs,
		})
	}
	floatAcc := train.Accuracy(h, tx, ty, 64)
	fmt.Printf("float test accuracy:   %.4f\n", floatAcc)

	eng, err := deploy.Compile(h, x)
	if err != nil {
		fatal(err)
	}
	if *int8Pol {
		eng.Policy = deploy.PolicyInt8
	}
	fmt.Printf("activation policy:     %s\n", eng.Policy)

	// Verify the integer engine against the float model at the policy the
	// artifact will ship with.
	dim := tx.Dim(1)
	agree, correct := 0, 0
	floatPred := h.Forward(tx, false).ArgmaxRows()
	for i := 0; i < tx.Dim(0); i++ {
		_, cls := eng.Infer(tx.Data[i*dim : (i+1)*dim])
		if cls == floatPred[i] {
			agree++
		}
		if cls == ty[i] {
			correct++
		}
	}
	fmt.Printf("integer test accuracy: %.4f\n", float64(correct)/float64(tx.Dim(0)))
	fmt.Printf("float/int agreement:   %d/%d\n", agree, tx.Dim(0))

	if *calibOut {
		// The float-side calibration table (what FakeQuant simulated) next to
		// the scales the engine actually serialises into the v3 artifact.
		pol := quant.ActMixed816
		if *int8Pol {
			pol = quant.Act8
		}
		fmt.Println("\nper-layer calibration records (float simulation):")
		for _, r := range quant.Calibrate(h, x, pol).Records() {
			fmt.Printf("  %-28s bits=%-2d scale=%g\n", r.Layer, r.Bits, r.Scale)
		}
		fmt.Println("engine activation sites (.thnt v3 table):")
		for _, c := range eng.Calib {
			fmt.Printf("  %-28s bits=%-2d scale=%g\n", c.Site, c.Bits, c.Scale)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	n, err := eng.WriteTo(f)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	var floatBytes int64
	for _, p := range h.Params() {
		floatBytes += int64(p.W.Size()) * 4
	}
	fmt.Printf("\nwrote %s: %d bytes (float32 parameters would be %d bytes, %.1fx larger)\n",
		*out, n, floatBytes, float64(floatBytes)/float64(n))

	// The paper's Table 6 footprint story for this artifact: flash (model
	// file) and steady-state activation scratch under each execution mode.
	scratchFloat := eng.FloatScratchBytes()
	eng.Policy = deploy.PolicyInt8
	scratch8 := eng.ScratchBytes()
	eng.Policy = deploy.PolicyMixed
	scratchMixed := eng.ScratchBytes()
	fmt.Println("\nfootprint (bytes):          model file    activation scratch")
	fmt.Printf("  float32 reference     %12d  %12d\n", floatBytes, scratchFloat)
	fmt.Printf("  packed mixed 8/16-bit %12d  %12d\n", n, scratchMixed)
	fmt.Printf("  packed fully 8-bit    %12d  %12d\n", n, scratch8)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
