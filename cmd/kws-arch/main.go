// Command kws-arch prints the paper's Figure 1 (the hybrid neural-tree
// architecture) as text along with per-layer op/size walks, and a summary
// table of every architecture in the repository at full scale.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/opcount"
)

func main() {
	fmt.Print(exp.Figure1())
	fmt.Println()
	fmt.Println("All architectures at paper scale:")
	fmt.Println()
	rng := rand.New(rand.NewSource(7))
	rows := []struct {
		name    string
		model   nn.Layer
		fpBytes float64
	}{
		{"DS-CNN", models.NewDSCNN(12, 1, rng), 1},
		{"ST-DS-CNN (r=0.75)", models.NewSTDSCNN(12, 1, 0.75, rng), 4},
		{"CNN", models.NewCNN(12, 1, rng), 1},
		{"DNN", models.NewDNN(12, 1, rng), 1},
		{"LSTM", models.NewLSTMModel(12, 1, rng), 1},
		{"Basic LSTM", models.NewBasicLSTM(12, 1, rng), 1},
		{"GRU", models.NewGRUModel(12, 1, rng), 1},
		{"CRNN", models.NewCRNN(12, 1, rng), 1},
	}
	uncompressed := core.DefaultConfig(12)
	uncompressed.Strassen = false
	rows = append(rows,
		struct {
			name    string
			model   nn.Layer
			fpBytes float64
		}{"HybridNet", core.New(uncompressed, rng), 4},
		struct {
			name    string
			model   nn.Layer
			fpBytes float64
		}{"ST-HybridNet", core.New(core.DefaultConfig(12), rng), 4},
	)
	fmt.Fprintf(os.Stdout, "  %-20s %10s %10s %10s %10s %10s\n", "network", "muls", "adds", "MACs", "ops", "model")
	for _, row := range rows {
		r := opcount.Count(row.model, models.InputDim)
		fmt.Fprintf(os.Stdout, "  %-20s %9.3fM %9.3fM %9.3fM %9.3fM %9.2fKB\n",
			row.name,
			float64(r.Total.Muls)/1e6, float64(r.Total.Adds)/1e6,
			float64(r.Total.MACs)/1e6, float64(r.Total.Ops())/1e6,
			r.ModelSizeBytes(row.fpBytes)/1024)
	}
}
