// Command kws-bench measures the packed inference engine at the paper's
// deployment shape and writes the numbers to a machine-readable JSON file,
// so perf regressions show up as a diff rather than a feeling. It times
// three paths over the same synthetic ST-HybridNet engine (see
// deploy.SyntheticEngine): the retained naive reference (Engine.Naive), the
// sparse zero-allocation single-frame path (Engine.Infer), and the parallel
// batch path (Engine.InferBatch).
//
// Usage:
//
//	kws-bench                         # writes BENCH_engine.json
//	kws-bench -o - -reps 5            # print JSON to stdout, best of 5
//	kws-bench -density 0.2 -batch 32
//
// The headline gates, asserted here and in the test suite: Infer must run
// with 0 allocs/op and at least 2× faster than the naive reference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/deploy"
)

type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Schema          string   `json:"schema"`
	Generated       string   `json:"generated"`
	GoVersion       string   `json:"go_version"`
	GOOS            string   `json:"goos"`
	GOARCH          string   `json:"goarch"`
	GOMAXPROCS      int      `json:"gomaxprocs"`
	Shape           string   `json:"shape"`
	Density         float64  `json:"density"`
	Seed            int64    `json:"seed"`
	BatchSize       int      `json:"batch_size"`
	Reps            int      `json:"reps"`
	Results         []result `json:"results"`
	SpeedupVsNaive  float64  `json:"speedup_sparse_vs_naive"`
	BatchNsPerFrame float64  `json:"batch_ns_per_frame"`
}

// best runs a benchmark reps times and keeps the fastest run — the one
// least disturbed by scheduler noise; allocation counts are identical
// across runs.
func best(reps int, f func(b *testing.B)) result {
	var r testing.BenchmarkResult
	for i := 0; i < reps; i++ {
		br := testing.Benchmark(f)
		if i == 0 || br.NsPerOp() < r.NsPerOp() {
			r = br
		}
	}
	return result{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func main() {
	out := flag.String("o", "BENCH_engine.json", `output file ("-" for stdout)`)
	seed := flag.Int64("seed", 9, "synthetic engine weight seed")
	density := flag.Float64("density", 0.35, "ternary nonzero density")
	batch := flag.Int("batch", 64, "frames per InferBatch call")
	reps := flag.Int("reps", 3, "benchmark repetitions; the fastest is kept")
	flag.Parse()

	e := deploy.SyntheticEngine(*seed, *density)
	rng := rand.New(rand.NewSource(*seed + 1))
	x := make([]float32, e.Frames*e.Coeffs)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	xs := make([][]float32, *batch)
	for i := range xs {
		f := make([]float32, len(x))
		for j := range f {
			f[j] = float32(rng.NormFloat64())
		}
		xs[i] = f
	}

	rep := report{
		Schema:     "kws-bench/v1",
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Shape: fmt.Sprintf("%dx%d in, %d convs, %d classes",
			e.Frames, e.Coeffs, len(e.Convs), e.Tree.NumClasses),
		Density:   *density,
		Seed:      *seed,
		BatchSize: *batch,
		Reps:      *reps,
	}

	naive := best(*reps, func(b *testing.B) {
		e.Naive = true
		defer func() { e.Naive = false }()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Infer(x)
		}
	})
	naive.Name = "EngineInferNaive"
	rep.Results = append(rep.Results, naive)

	e.Infer(x) // warm up: kernel compile + arena build
	sparse := best(*reps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Infer(x)
		}
	})
	sparse.Name = "EngineInfer"
	rep.Results = append(rep.Results, sparse)

	e.InferBatch(xs[:1]) // warm up the batch arena pool
	bat := best(*reps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range e.InferBatch(xs) {
				if r.Err != nil {
					panic(r.Err)
				}
			}
		}
	})
	bat.Name = fmt.Sprintf("EngineInferBatch%d", *batch)
	rep.Results = append(rep.Results, bat)

	rep.SpeedupVsNaive = naive.NsPerOp / sparse.NsPerOp
	rep.BatchNsPerFrame = bat.NsPerOp / float64(*batch)

	if sparse.AllocsPerOp != 0 {
		fmt.Fprintf(os.Stderr, "kws-bench: REGRESSION: Infer allocates %d objects/op, want 0\n", sparse.AllocsPerOp)
	}
	if rep.SpeedupVsNaive < 2 {
		fmt.Fprintf(os.Stderr, "kws-bench: WARNING: sparse speedup %.2fx below the 2x gate (noisy host?)\n", rep.SpeedupVsNaive)
	}

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kws-bench:", err)
		os.Exit(1)
	}
	js = append(js, '\n')
	if *out == "-" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(*out, js, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "kws-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("kws-bench: naive %.0f ns/op, sparse %.0f ns/op (%.2fx, %d allocs/op), batch %.0f ns/frame -> %s\n",
		naive.NsPerOp, sparse.NsPerOp, rep.SpeedupVsNaive,
		sparse.AllocsPerOp, rep.BatchNsPerFrame, *out)
}
