// Command kws-bench measures the repository's two hot paths and writes the
// numbers to machine-readable JSON files, so perf regressions show up as a
// diff rather than a feeling.
//
// Engine mode (default) times the inference paths over the same synthetic
// ST-HybridNet engine (see deploy.SyntheticEngine): the retained scalar
// naive reference (Engine.Naive), the float32 reference simulation
// (Engine.InferFloat — the EngineInfer row, the baseline the integer
// policies are measured against), the word-packed integer path at the mixed
// 8/16-bit and fully-8-bit activation policies (Engine.InferInt), and the
// frame-major lane batch path per policy (EngineInferBatchMixed /
// EngineInferBatchInt8) swept across worker counts — each batch row is
// measured under runtime.GOMAXPROCS(workers), with EngineInferBatchFloat
// (serial per-frame InferFloat over the same batch) as the float baseline.
// It also records the measured weight density, the model file size, the
// per-policy activation scratch footprints, and the cost model's per-row
// layout choices (runs/spans/packed2b) for every lane-dispatched ternary
// matrix, plus an int8 single-frame row per forced layout (SetForceLayout)
// so the layout cost model is auditable from the report. Parity
// cross-checks: integer/float on 1000 random frames, 1000 frames of batch
// output bit-exact against the scalar NaiveInt oracle under both policies,
// and the same NaiveInt oracle against a telemetry-attached engine
// (single-frame and batch) — attaching an observer must not change a bit.
//
// Train mode (-train) measures training throughput on the paper-shape
// hybrid: samples/sec and ns/step for the serial trainer versus the
// data-parallel trainer at 1/2/4/8 workers, plus cold- versus warm-cache
// dataset setup through the THFC feature cache.
//
// Serve mode (-serve) drives the multi-session serving core
// (internal/serve) with over a thousand concurrent fault-injected sessions
// sharing one engine, and records sessions sustained, clean sessions lost,
// peak concurrency, hop-latency percentiles and absorbed-fault counts.
//
// Usage:
//
//	kws-bench                         # writes BENCH_engine.json
//	kws-bench -train                  # writes BENCH_train.json
//	kws-bench -serve                  # writes BENCH_serve.json
//	kws-bench -o - -reps 5            # print JSON to stdout, best of 5
//	kws-bench -density 0.2 -batch 32
//
// The engine headline gates, asserted here and in the test suite: the
// integer paths (single-frame and batch) must run with 0 allocs/op,
// EngineInferInt8 must be at least -min-speedup (default 2.5×) faster than
// the float EngineInfer baseline, InferInt must agree byte-exactly with
// InferFloat, all NaiveInt parity checks (batch, telemetry-attached) must
// hold, and — unless -gate-batch=false — batch ns/frame at workers=1 must
// stay within 1.5× of the matching single-frame ns/op for both integer
// policies (exit status 1 otherwise). The v3 gate demanded batch *beat*
// single-frame at one worker; the column-lane single-frame kernels
// inverted that relationship by design, so v4 gates the lane path's
// overhead bound instead and leaves winning to the multi-worker rows.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/dsp"
	"repro/internal/speechcmd"
	"repro/internal/telemetry"
	"repro/internal/train"
)

type result struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers,omitempty"` // batch rows: GOMAXPROCS the row ran under
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerFrame  float64 `json:"ns_per_frame,omitempty"` // batch rows: ns_per_op / batch size
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type report struct {
	Schema            string                `json:"schema"`
	Generated         string                `json:"generated"`
	GoVersion         string                `json:"go_version"`
	GOOS              string                `json:"goos"`
	GOARCH            string                `json:"goarch"`
	GOMAXPROCS        int                   `json:"gomaxprocs"`
	NumCPU            int                   `json:"num_cpu"`
	Shape             string                `json:"shape"`
	Density           float64               `json:"density"`
	DensityMeasured   float64               `json:"density_measured"`
	Seed              int64                 `json:"seed"`
	BatchSize         int                   `json:"batch_size"`
	Reps              int                   `json:"reps"`
	ModelFileBytes    int64                 `json:"model_file_bytes"`
	ScratchBytesFloat int64                 `json:"scratch_bytes_float"`
	ScratchBytesMixed int64                 `json:"scratch_bytes_mixed"`
	ScratchBytesInt8  int64                 `json:"scratch_bytes_int8"`
	WorkerCounts      []int                 `json:"worker_counts"`
	LayerLayouts      []deploy.LayerLayouts `json:"layer_layouts"`
	Results           []result              `json:"results"`
	SpeedupVsNaive    float64               `json:"speedup_mixed_vs_naive"`
	SpeedupIntVsFloat float64               `json:"speedup_int8_vs_float"`
	LayoutSpeedups    map[string]float64    `json:"speedup_int8_vs_float_by_layout"`
	IntFloatParity    bool                  `json:"int_float_parity_1000_frames"`
	BatchParity       bool                  `json:"batch_parity_1000_frames"`
	TelemetryParity   bool                  `json:"telemetry_parity_1000_frames"`
	BatchNsPerFrame   float64               `json:"batch_ns_per_frame"` // mixed @ workers=1 (v2 continuity)
	BatchNsFrameFloat float64               `json:"batch_ns_per_frame_float"`
	BatchNsFrameMixed float64               `json:"batch_ns_per_frame_mixed"`
	BatchNsFrameInt8  float64               `json:"batch_ns_per_frame_int8"`
	HopFrames         int                   `json:"hop_frames"`           // new frames per incremental hop
	HopEffectiveMs    int                   `json:"hop_effective_ms"`     // 250 ms snapped to the 20 ms stride grid
	StreamSampleRate  int                   `json:"stream_sample_rate"`   // rate of the streaming-pipeline rows
	HopParity         bool                  `json:"hop_parity_1000_hops"` // InferHop == full-window InferInt, both policies
	HopEngineSpeedups map[string]float64    `json:"hop_engine_speedup_by_policy"`
	SpeedupHopVsFull  float64               `json:"speedup_hop_vs_full"` // streaming per-hop pipeline (featurise+infer), gated
	CPUWarning        string                `json:"cpu_warning,omitempty"`
	Note              string                `json:"note,omitempty"`
}

// best runs a benchmark reps times and keeps the fastest run — the one
// least disturbed by scheduler noise; allocation counts are identical
// across runs.
func best(reps int, f func(b *testing.B)) result {
	var r testing.BenchmarkResult
	for i := 0; i < reps; i++ {
		br := testing.Benchmark(f)
		if i == 0 || br.NsPerOp() < r.NsPerOp() {
			r = br
		}
	}
	return result{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func writeReport(v any, out string) {
	js, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kws-bench:", err)
		os.Exit(1)
	}
	js = append(js, '\n')
	if out == "-" {
		os.Stdout.Write(js)
		return
	}
	if err := os.WriteFile(out, js, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "kws-bench: writing report %s: %v\n", out, err)
		os.Exit(1)
	}
}

func main() {
	out := flag.String("o", "", `output file ("-" for stdout; default BENCH_engine.json or BENCH_train.json)`)
	seed := flag.Int64("seed", 9, "synthetic engine weight seed")
	density := flag.Float64("density", 0.35, "ternary nonzero density")
	batch := flag.Int("batch", 64, "frames per InferBatch call")
	workers := flag.String("workers", "1,2,4,8", "comma-separated GOMAXPROCS values for the batch worker-scaling sweep")
	gateBatch := flag.Bool("gate-batch", true, "exit nonzero if batch ns/frame at workers=1 exceeds 1.5x single-frame ns/op")
	minSpeedup := flag.Float64("min-speedup", 2.5, "exit nonzero if single-frame int8 speedup vs float falls below this (0 disables)")
	minHopSpeedup := flag.Float64("min-hop-speedup", 2.0, "exit nonzero if the streaming per-hop pipeline (featurise+infer) speedup of incremental over full-window falls below this (0 disables)")
	reps := flag.Int("reps", 3, "benchmark repetitions; the fastest is kept")
	trainMode := flag.Bool("train", false, "benchmark training throughput instead of the inference engine")
	serveMode := flag.Bool("serve", false, "benchmark the serving daemon core under concurrent fault-injected sessions")
	serveSessions := flag.Int("serve-sessions", 1200, "concurrent sessions for the serving benchmark")
	serveFaultFrac := flag.Float64("serve-fault-frac", 0.25, "fraction of serving-benchmark sessions fed through the fault injector")
	trainWidth := flag.Float64("train-width", 0.25, "hybrid width multiplier for the training benchmark")
	trainSamples := flag.Int("train-samples", 16, "corpus samples per class for the training benchmark")
	trainEpochs := flag.Int("train-epochs", 1, "epochs per timed training run")
	flag.Parse()

	if *serveMode {
		if *out == "" {
			*out = "BENCH_serve.json"
		}
		benchServe(*out, *seed, *density, *serveSessions, *serveFaultFrac)
		return
	}
	if *trainMode {
		if *out == "" {
			*out = "BENCH_train.json"
		}
		benchTrain(*out, *seed, *trainWidth, *trainSamples, *trainEpochs, *reps)
		return
	}
	if *out == "" {
		*out = "BENCH_engine.json"
	}
	benchEngine(*out, *seed, *density, *batch, *reps, parseWorkers(*workers), *gateBatch, *minSpeedup, *minHopSpeedup)
}

// parseWorkers turns the -workers flag ("1,2,4,8") into a sorted-as-given
// list of positive GOMAXPROCS values. The list must contain 1: the
// workers=1 rows anchor the batch overhead gate against single-frame.
func parseWorkers(s string) []int {
	var ws []int
	has1 := false
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 1 {
			fmt.Fprintf(os.Stderr, "kws-bench: bad -workers entry %q (want positive integers)\n", part)
			os.Exit(2)
		}
		ws = append(ws, w)
		has1 = has1 || w == 1
	}
	if !has1 {
		ws = append([]int{1}, ws...)
	}
	return ws
}

func benchEngine(out string, seed int64, density float64, batch, reps int, workerCounts []int, gateBatch bool, minSpeedup, minHopSpeedup float64) {
	e := deploy.SyntheticEngine(seed, density)
	rng := rand.New(rand.NewSource(seed + 1))
	x := make([]float32, e.Frames*e.Coeffs)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	xs := make([][]float32, batch)
	for i := range xs {
		f := make([]float32, len(x))
		for j := range f {
			f[j] = float32(rng.NormFloat64())
		}
		xs[i] = f
	}

	rep := report{
		Schema:    "kws-bench/v5",
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Shape: fmt.Sprintf("%dx%d in, %d convs, %d classes",
			e.Frames, e.Coeffs, len(e.Convs), e.Tree.NumClasses),
		Density:         density,
		DensityMeasured: e.MeasuredDensity(),
		Seed:            seed,
		BatchSize:       batch,
		WorkerCounts:    workerCounts,
		Reps:            reps,
		ModelFileBytes:  e.Size(),
		Note: "schema v5 adds the incremental streaming rows: EngineInferHop* time the " +
			"engine's temporal-cache hop path (12 new frames per 240 ms hop, 0 allocs), " +
			"StreamHopFull/StreamHopIncremental time the whole per-hop streaming pipeline " +
			"(MFCC featurisation + inference) at 16 kHz, and speedup_hop_vs_full gates the " +
			"pipeline ratio — featurisation dominates the full path, while pad erosion " +
			"caps the engine-only hop reuse near 1.8x (hop_engine_speedup_by_policy). " +
			"v4 carry-overs: layer_layouts + EngineInferInt8Forced* audit the layout cost " +
			"model; batch overhead at workers=1 is bounded at 1.5x of single-frame; batch " +
			"rows are per-policy under GOMAXPROCS=workers",
	}

	// Footprints per policy (the paper's Table 6 size story). Restore the
	// mixed default before timing so the benched engine matches shipped
	// behaviour.
	rep.ScratchBytesFloat = e.FloatScratchBytes()
	e.Policy = deploy.PolicyInt8
	rep.ScratchBytesInt8 = e.ScratchBytes()
	e.Policy = deploy.PolicyMixed
	rep.ScratchBytesMixed = e.ScratchBytes()

	naive := best(reps, func(b *testing.B) {
		e.Naive = true
		defer func() { e.Naive = false }()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Infer(x)
		}
	})
	naive.Name = "EngineInferNaive"
	rep.Results = append(rep.Results, naive)

	e.InferFloat(x) // warm up: kernel compile + float arena build
	flt := best(reps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.InferFloat(x)
		}
	})
	flt.Name = "EngineInfer"
	rep.Results = append(rep.Results, flt)

	e.Policy = deploy.PolicyMixed
	e.InferInt(x) // warm up: integer arena at the mixed policy
	mixed := best(reps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.InferInt(x)
		}
	})
	mixed.Name = "EngineInferMixed"
	rep.Results = append(rep.Results, mixed)

	e.Policy = deploy.PolicyInt8
	e.InferInt(x) // warm up: arena rebuild at the 8-bit policy
	int8r := best(reps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.InferInt(x)
		}
	})
	int8r.Name = "EngineInferInt8"
	rep.Results = append(rep.Results, int8r)

	// Layout cost-model audit: the per-row choices the model made, plus the
	// int8 single-frame time with each layout forced everywhere, so the
	// report shows the auto choice is at (or near) the per-layout floor.
	rep.LayerLayouts = e.LayoutReport()
	rep.LayoutSpeedups = map[string]float64{}
	forcedRows := make([]result, 0, 3)
	for _, lk := range []deploy.LayoutKind{deploy.LayoutRuns, deploy.LayoutSpans, deploy.LayoutPacked2b} {
		e.SetForceLayout(lk)
		e.InferInt(x) // warm up under the forced layout
		fr := best(reps, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e.InferInt(x)
			}
		})
		ln := lk.String()
		fr.Name = "EngineInferInt8Forced" + strings.ToUpper(ln[:1]) + ln[1:]
		rep.Results = append(rep.Results, fr)
		forcedRows = append(forcedRows, fr)
		rep.LayoutSpeedups[lk.String()] = flt.NsPerOp / fr.NsPerOp
	}
	e.SetForceLayout(deploy.LayoutAuto)
	rep.LayoutSpeedups["auto"] = flt.NsPerOp / int8r.NsPerOp
	e.Policy = deploy.PolicyMixed

	// Batch float baseline: serial per-frame InferFloat over the same batch.
	// One row — the float path has no lane kernels to scale.
	e.InferFloat(x)
	batFlt := best(reps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, f := range xs {
				e.InferFloat(f)
			}
		}
	})
	batFlt.Name = "EngineInferBatchFloat"
	batFlt.Workers = 1
	batFlt.NsPerFrame = batFlt.NsPerOp / float64(batch)
	rep.Results = append(rep.Results, batFlt)
	rep.BatchNsFrameFloat = batFlt.NsPerFrame

	// Worker-scaling sweep over the frame-major lane batch path, per policy.
	// Each row is measured under GOMAXPROCS=workers and capped at that many
	// lane workers, the steady-state serving shape (reused result slice).
	prevProcs := runtime.GOMAXPROCS(0)
	batAt1 := map[deploy.Policy]result{}
	for _, pc := range []struct {
		pol  deploy.Policy
		name string
	}{
		{deploy.PolicyMixed, "EngineInferBatchMixed"},
		{deploy.PolicyInt8, "EngineInferBatchInt8"},
	} {
		e.Policy = pc.pol
		dst := e.InferBatchInto(nil, xs) // warm up: lane arenas + result storage
		for _, w := range workerCounts {
			runtime.GOMAXPROCS(w)
			maxW := w
			r := best(reps, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					dst = e.InferBatchCappedInto(dst, xs, maxW)
				}
			})
			runtime.GOMAXPROCS(prevProcs)
			for _, br := range dst {
				if br.Err != nil {
					fmt.Fprintf(os.Stderr, "kws-bench: %s workers=%d: %v\n", pc.name, w, br.Err)
					os.Exit(1)
				}
			}
			r.Name = pc.name
			r.Workers = w
			r.NsPerFrame = r.NsPerOp / float64(batch)
			rep.Results = append(rep.Results, r)
			if w == 1 {
				batAt1[pc.pol] = r
			}
		}
	}
	e.Policy = deploy.PolicyMixed

	// Incremental hop rows (schema v5): the temporal-cache streaming path at
	// the default cadence — 250 ms snapped to the MFCC stride grid is 240 ms,
	// i.e. 12 new frames of the 49-frame window per hop.
	const hopFrames = 12
	rep.HopFrames = hopFrames
	rep.HopEffectiveMs = 240
	hopRows := map[string]result{}
	for _, pc := range []struct {
		pol   deploy.Policy
		name  string
		float bool
	}{
		{deploy.PolicyMixed, "EngineInferHopFloat", true},
		{deploy.PolicyMixed, "EngineInferHopMixed", false},
		{deploy.PolicyInt8, "EngineInferHopInt8", false},
	} {
		e.Policy = pc.pol
		r := benchHop(e, pc.float, hopFrames, reps)
		r.Name = pc.name
		rep.Results = append(rep.Results, r)
		hopRows[pc.name] = r
	}
	e.Policy = deploy.PolicyMixed
	rep.HopEngineSpeedups = map[string]float64{
		"float": flt.NsPerOp / hopRows["EngineInferHopFloat"].NsPerOp,
		"mixed": mixed.NsPerOp / hopRows["EngineInferHopMixed"].NsPerOp,
		"int8":  int8r.NsPerOp / hopRows["EngineInferHopInt8"].NsPerOp,
	}
	rep.HopParity = hopParityCheck(e, seed+5, 1000, hopFrames)

	// Streaming per-hop pipeline rows: what one hop of a streaming session
	// actually costs — featurisation plus inference. The full-window pipeline
	// re-featurises the whole one-second window (49 FFT/mel/DCT frames at
	// 16 kHz) and re-infers it; the incremental pipeline featurises only the
	// hop's 12 new frames through the streaming frontend and shifts the
	// engine's activation cache. Featurisation dominates the full path, which
	// is why the headline speedup gate lives here rather than on the
	// engine-only rows (pad erosion caps engine-only reuse near 1.8x).
	rep.StreamSampleRate = 16000
	streamFull, streamInc := benchStreamHop(e, rep.StreamSampleRate, hopFrames, reps)
	streamFull.Name = "StreamHopFull"
	streamInc.Name = "StreamHopIncremental"
	rep.Results = append(rep.Results, streamFull, streamInc)
	rep.SpeedupHopVsFull = streamFull.NsPerOp / streamInc.NsPerOp

	rep.SpeedupVsNaive = naive.NsPerOp / mixed.NsPerOp
	rep.SpeedupIntVsFloat = flt.NsPerOp / int8r.NsPerOp
	rep.IntFloatParity = parityCheck(e, seed+2, 1000)
	rep.BatchParity = batchParityCheck(e, seed+3, 1000, batch)
	rep.TelemetryParity = telemetryParityCheck(e, seed, density, seed+4, 1000, batch)
	rep.BatchNsFrameMixed = batAt1[deploy.PolicyMixed].NsPerFrame
	rep.BatchNsFrameInt8 = batAt1[deploy.PolicyInt8].NsPerFrame
	rep.BatchNsPerFrame = rep.BatchNsFrameMixed
	// Recorded after the benchmarks so the report reflects the environment
	// the numbers were actually measured under.
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	if rep.NumCPU == 1 {
		rep.CPUWarning = "single-CPU host: batch worker rows timeslice one core, so the " +
			"worker-scaling sweep cannot show parallel speedup here; rerun on a " +
			"multi-core host for the scaling curve (single-frame rows are unaffected)"
	}

	fail := false
	allocRows := append([]result{mixed, int8r, batAt1[deploy.PolicyMixed], batAt1[deploy.PolicyInt8],
		hopRows["EngineInferHopFloat"], hopRows["EngineInferHopMixed"], hopRows["EngineInferHopInt8"],
		streamInc}, forcedRows...)
	for _, r := range allocRows {
		if r.AllocsPerOp != 0 {
			fmt.Fprintf(os.Stderr, "kws-bench: REGRESSION: %s allocates %d objects/op, want 0\n", r.Name, r.AllocsPerOp)
			fail = true
		}
	}
	if minSpeedup > 0 && rep.SpeedupIntVsFloat < minSpeedup {
		fmt.Fprintf(os.Stderr, "kws-bench: REGRESSION: int8 speedup %.2fx below the %.2fx gate\n",
			rep.SpeedupIntVsFloat, minSpeedup)
		fail = true
	}
	if minHopSpeedup > 0 && rep.SpeedupHopVsFull < minHopSpeedup {
		fmt.Fprintf(os.Stderr, "kws-bench: REGRESSION: streaming hop pipeline speedup %.2fx below the %.2fx gate\n",
			rep.SpeedupHopVsFull, minHopSpeedup)
		fail = true
	}
	if !rep.HopParity {
		fmt.Fprintln(os.Stderr, "kws-bench: REGRESSION: InferHop disagrees with full-window InferInt")
		fail = true
	}
	if !rep.IntFloatParity {
		fmt.Fprintln(os.Stderr, "kws-bench: REGRESSION: InferInt disagrees with the InferFloat simulation")
		fail = true
	}
	if !rep.BatchParity {
		fmt.Fprintln(os.Stderr, "kws-bench: REGRESSION: InferBatch disagrees with the NaiveInt oracle")
		fail = true
	}
	if !rep.TelemetryParity {
		fmt.Fprintln(os.Stderr, "kws-bench: REGRESSION: telemetry-attached engine disagrees with the NaiveInt oracle")
		fail = true
	}
	if gateBatch {
		// The single-frame column-lane kernels beat the batch lane path at
		// one worker by design (the batch path pays frame transposes and
		// lane scheduling to win at higher worker counts), so the gate here
		// bounds that overhead rather than demanding batch win.
		const batchOverheadTol = 1.5
		for _, g := range []struct {
			pol    string
			batch  result
			single result
		}{
			{"mixed", batAt1[deploy.PolicyMixed], mixed},
			{"int8", batAt1[deploy.PolicyInt8], int8r},
		} {
			if g.batch.NsPerFrame > g.single.NsPerOp*batchOverheadTol {
				fmt.Fprintf(os.Stderr,
					"kws-bench: REGRESSION: %s batch %.0f ns/frame at workers=1 exceeds %.1fx single-frame %.0f ns/op\n",
					g.pol, g.batch.NsPerFrame, batchOverheadTol, g.single.NsPerOp)
				fail = true
			}
		}
	}

	writeReport(rep, out)
	fmt.Printf("kws-bench: naive %.0f ns/op, float %.0f ns/op, mixed %.0f ns/op, int8 %.0f ns/op (%.2fx vs float, %d allocs/op), forced runs/spans/packed2b %.2fx/%.2fx/%.2fx, batch mixed %.0f / int8 %.0f ns/frame @ workers=1, hop mixed %.0f / int8 %.0f ns/hop, stream hop %.0f vs full %.0f ns (%.2fx) -> %s\n",
		naive.NsPerOp, flt.NsPerOp, mixed.NsPerOp, int8r.NsPerOp,
		rep.SpeedupIntVsFloat, int8r.AllocsPerOp,
		rep.LayoutSpeedups["runs"], rep.LayoutSpeedups["spans"], rep.LayoutSpeedups["packed2b"],
		rep.BatchNsFrameMixed, rep.BatchNsFrameInt8,
		hopRows["EngineInferHopMixed"].NsPerOp, hopRows["EngineInferHopInt8"].NsPerOp,
		streamInc.NsPerOp, streamFull.NsPerOp, rep.SpeedupHopVsFull, out)
	if fail {
		os.Exit(1)
	}
}

// benchHop times the engine's incremental hop path in steady state: a long
// strip of overlapping windows advanced hopFrames rows per call, with the
// cache re-seeded (a full recompute) only when the strip wraps — 1/255 of
// timed hops, matching a streaming session that almost never discontinues.
func benchHop(e *deploy.Engine, float bool, hopFrames, reps int) result {
	const hops = 256
	rng := rand.New(rand.NewSource(17))
	coeffs := int(e.Coeffs)
	frames := int(e.Frames)
	strip := make([]float32, (frames+hopFrames*hops)*coeffs)
	for i := range strip {
		strip[i] = float32(rng.NormFloat64())
	}
	window := func(i int) []float32 {
		return strip[i*hopFrames*coeffs:][:frames*coeffs]
	}
	infer := e.InferHopInt
	if float {
		infer = e.InferHopFloat
	}
	hs := e.NewHopState()
	defer hs.Release()
	infer(hs, window(0), frames) // warm up: cold full recompute
	i := 1
	return best(reps, func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if i >= hops {
				i = 1
				infer(hs, window(0), frames)
			}
			infer(hs, window(i), hopFrames)
			i++
		}
	})
}

// benchStreamHop times one hop of the streaming pipeline both ways over the
// same audio strip. Full: batch-featurise the trailing one-second window
// (dsp.MFCC.Compute) and run full-window InferInt — the per-hop work of the
// non-incremental detector. Incremental: push only the hop's samples through
// the streaming frontend (which featurises just the newly completed frames)
// and run the cached hop path. Both run the engine's default mixed policy.
func benchStreamHop(e *deploy.Engine, rate, hopFrames, reps int) (full, inc result) {
	const hops = 64
	mfccCfg := dsp.DefaultMFCCConfig(rate)
	hopSamples := hopFrames * mfccCfg.Stride()
	rng := rand.New(rand.NewSource(18))
	strip := make([]float64, rate+hopSamples*hops)
	for i := range strip {
		strip[i] = 0.4 * rng.NormFloat64()
	}

	m := dsp.NewMFCC(mfccCfg)
	fi := 0
	full = best(reps, func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			f := m.Compute(strip[fi*hopSamples:][:rate])
			e.InferInt(f.Data)
			fi++
			if fi >= hops {
				fi = 0
			}
		}
	})

	frames := int(e.Frames)
	fe := dsp.NewFrontend(mfccCfg, frames)
	feat := make([]float32, frames*int(e.Coeffs))
	hs := e.NewHopState()
	defer hs.Release()
	seed := func() int {
		fe.Reset()
		hs.Invalidate()
		fe.Push(strip[:rate])
		fe.Window(feat)
		e.InferHopInt(hs, feat, frames)
		return rate
	}
	pos := seed()
	inc = best(reps, func(b *testing.B) {
		b.ReportAllocs()
		for n := 0; n < b.N; n++ {
			if pos+hopSamples > len(strip) {
				// Strip wrap: re-anchor with a timed full recompute, 1/64 of
				// hops — a conservative penalty on the incremental side.
				pos = seed()
			}
			fe.Push(strip[pos : pos+hopSamples])
			fe.Window(feat)
			e.InferHopInt(hs, feat, hopFrames)
			pos += hopSamples
		}
	})
	return full, inc
}

// hopParityCheck verifies the incremental headline exactness claim on the
// shipped binary: n consecutive hops through the temporal cache must agree
// byte-for-byte with full-window InferInt on the same windows, under both
// activation policies.
func hopParityCheck(e *deploy.Engine, seed int64, n, hopFrames int) bool {
	rng := rand.New(rand.NewSource(seed))
	coeffs := int(e.Coeffs)
	frames := int(e.Frames)
	strip := make([]float32, (frames+hopFrames*n)*coeffs)
	for i := range strip {
		strip[i] = float32(rng.NormFloat64()) * 2
	}
	defer func(p deploy.Policy) { e.Policy = p }(e.Policy)
	for _, pol := range []deploy.Policy{deploy.PolicyMixed, deploy.PolicyInt8} {
		e.Policy = pol
		hs := e.NewHopState()
		for i := 0; i < n; i++ {
			w := strip[i*hopFrames*coeffs:][:frames*coeffs]
			nNew := hopFrames
			if i == 0 {
				nNew = frames
			}
			hsc, hcl := e.InferHopInt(hs, w, nNew)
			wsc, wcl := e.InferInt(w)
			if hcl != wcl {
				hs.Release()
				return false
			}
			for j := range hsc {
				if hsc[j] != wsc[j] {
					hs.Release()
					return false
				}
			}
		}
		hs.Release()
	}
	return true
}

// telemetryParityCheck rebuilds the synthetic engine, attaches a live
// telemetry observer, and verifies n frames through the observed
// single-frame path and the observed batch path both agree byte-for-byte
// with the plain engine's scalar NaiveInt oracle under both activation
// policies. Attaching an observer swaps in the instrumented kernels
// (inferArenaObserved, laneInferObserved); this pins their exactness on the
// shipped binary, not just the test suite.
func telemetryParityCheck(oracle *deploy.Engine, engSeed int64, density float64, seed int64, n, batch int) bool {
	eObs := deploy.SyntheticEngine(engSeed, density)
	eObs.EnableTelemetry(telemetry.NewRegistry(), nil)
	rng := rand.New(rand.NewSource(seed))
	defer func(p deploy.Policy) { oracle.Policy = p }(oracle.Policy)
	for _, pol := range []deploy.Policy{deploy.PolicyMixed, deploy.PolicyInt8} {
		oracle.Policy = pol
		eObs.Policy = pol
		var dst []deploy.BatchResult
		for done := 0; done < n; done += batch {
			m := batch
			if n-done < m {
				m = n - done
			}
			xs := make([][]float32, m)
			want := make([][]int32, m)
			for i := range xs {
				f := make([]float32, eObs.Frames*eObs.Coeffs)
				for j := range f {
					f[j] = float32(rng.NormFloat64()) * 2
				}
				xs[i] = f
				ws, wc := oracle.NaiveInt(f)
				want[i] = append([]int32(nil), ws...)
				is, ic := eObs.InferInt(f)
				if ic != wc {
					return false
				}
				for j := range is {
					if is[j] != ws[j] {
						return false
					}
				}
			}
			dst = eObs.InferBatchInto(dst, xs)
			for i, r := range dst {
				if r.Err != nil {
					return false
				}
				for j := range r.Scores {
					if r.Scores[j] != want[i][j] {
						return false
					}
				}
			}
		}
	}
	return true
}

// batchParityCheck verifies the batch headline exactness claim on the
// shipped binary: n frames pushed through the frame-major lane batch path
// (ragged tail included) must agree byte-for-byte with the int64 scalar
// NaiveInt oracle under both activation policies.
func batchParityCheck(e *deploy.Engine, seed int64, n, batch int) bool {
	rng := rand.New(rand.NewSource(seed))
	defer func(p deploy.Policy) { e.Policy = p }(e.Policy)
	for _, pol := range []deploy.Policy{deploy.PolicyMixed, deploy.PolicyInt8} {
		e.Policy = pol
		var dst []deploy.BatchResult
		for done := 0; done < n; done += batch {
			m := batch
			if n-done < m {
				m = n - done
			}
			xs := make([][]float32, m)
			for i := range xs {
				f := make([]float32, e.Frames*e.Coeffs)
				for j := range f {
					f[j] = float32(rng.NormFloat64()) * 2
				}
				xs[i] = f
			}
			dst = e.InferBatchInto(dst, xs)
			for i, r := range dst {
				if r.Err != nil {
					return false
				}
				ns, nc := e.NaiveInt(xs[i])
				if r.Class != nc {
					return false
				}
				for j := range ns {
					if r.Scores[j] != ns[j] {
						return false
					}
				}
			}
		}
	}
	return true
}

// parityCheck verifies the headline exactness claim on the shipped binary:
// InferInt and the InferFloat simulation must agree byte-for-byte on n random
// frames under both activation policies.
func parityCheck(e *deploy.Engine, seed int64, n int) bool {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float32, e.Frames*e.Coeffs)
	defer func(p deploy.Policy) { e.Policy = p }(e.Policy)
	for _, pol := range []deploy.Policy{deploy.PolicyMixed, deploy.PolicyInt8} {
		e.Policy = pol
		for f := 0; f < n; f++ {
			for i := range x {
				x[i] = float32(rng.NormFloat64()) * 2
			}
			is, ic := e.InferInt(x)
			fs, fc := e.InferFloat(x)
			if ic != fc {
				return false
			}
			for j := range is {
				if is[j] != fs[j] {
					return false
				}
			}
		}
	}
	return true
}

// trainResult is one timed training configuration.
type trainResult struct {
	Name          string  `json:"name"`
	Workers       int     `json:"workers"`    // 0 = serial path
	GOMAXPROCS    int     `json:"gomaxprocs"` // procs the row was measured under
	Shards        int     `json:"shards"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	NsPerStep     float64 `json:"ns_per_step"`
	FinalLoss     float64 `json:"final_loss"`
}

// trainReport is the BENCH_train.json schema.
type trainReport struct {
	Schema              string        `json:"schema"`
	Generated           string        `json:"generated"`
	GoVersion           string        `json:"go_version"`
	GOOS                string        `json:"goos"`
	GOARCH              string        `json:"goarch"`
	GOMAXPROCS          int           `json:"gomaxprocs"`
	NumCPU              int           `json:"num_cpu"`
	Model               string        `json:"model"`
	WidthMult           float64       `json:"width_mult"`
	Seed                int64         `json:"seed"`
	SamplesPerClass     int           `json:"samples_per_class"`
	TrainSamples        int           `json:"train_samples"`
	Epochs              int           `json:"epochs"`
	BatchSize           int           `json:"batch_size"`
	Reps                int           `json:"reps"`
	Results             []trainResult `json:"results"`
	SpeedupW4VsSerial   float64       `json:"speedup_workers4_vs_serial"`
	CacheColdMs         float64       `json:"cache_cold_ms"`
	CacheWarmMs         float64       `json:"cache_warm_ms"`
	CacheSpeedup        float64       `json:"cache_speedup_warm_vs_cold"`
	DeterminismVerified bool          `json:"determinism_workers1_vs_4_verified"`
	Note                string        `json:"note,omitempty"`
}

// timedRun trains a fresh paper-shape hybrid from the same seed and returns
// the best-of-reps throughput for the given worker count.
func timedRun(x *train.Config, feats *speechcmd.Dataset, width float64, seed int64, workers, reps int) trainResult {
	bx, by := speechcmd.Batch(feats.Train, 0, len(feats.Train))
	steps := (len(by) + x.BatchSize - 1) / x.BatchSize * x.Epochs
	var bestElapsed time.Duration
	var lastLoss float64
	for rep := 0; rep < reps; rep++ {
		mcfg := core.DefaultConfig(speechcmd.NumClasses)
		mcfg.WidthMult = width
		m := core.New(mcfg, rand.New(rand.NewSource(seed)))
		cfg := *x
		cfg.Workers = workers
		start := time.Now()
		res := train.Run(m, bx, by, cfg)
		elapsed := time.Since(start)
		if rep == 0 || elapsed < bestElapsed {
			bestElapsed = elapsed
		}
		lastLoss = res.FinalLoss
	}
	name := "TrainSerial"
	shards := 0
	if workers > 0 {
		name = fmt.Sprintf("TrainWorkers%d", workers)
		shards = x.Shards
		if shards == 0 {
			shards = train.DefaultShards
		}
	}
	return trainResult{
		Name:          name,
		Workers:       workers,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Shards:        shards,
		SamplesPerSec: float64(len(by)*x.Epochs) / bestElapsed.Seconds(),
		NsPerStep:     float64(bestElapsed.Nanoseconds()) / float64(steps),
		FinalLoss:     lastLoss,
	}
}

func benchTrain(out string, seed int64, width float64, samplesPerCls, epochs, reps int) {
	dsCfg := speechcmd.DefaultConfig()
	dsCfg.SamplesPerCls = samplesPerCls
	dsCfg.Seed = seed

	// Cold vs warm feature cache through the real GenerateCached path.
	tmpDir, err := os.MkdirTemp("", "kws-bench-cache")
	if err != nil {
		fmt.Fprintln(os.Stderr, "kws-bench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(tmpDir)
	cachePath := filepath.Join(tmpDir, "feat.thfc")
	coldStart := time.Now()
	ds, warm, err := speechcmd.GenerateCached(dsCfg, cachePath)
	coldMs := float64(time.Since(coldStart).Nanoseconds()) / 1e6
	if err != nil || warm {
		fmt.Fprintf(os.Stderr, "kws-bench: cold cache generation failed (warm=%v err=%v)\n", warm, err)
		os.Exit(1)
	}
	warmMs := 0.0
	for rep := 0; rep < reps; rep++ {
		warmStart := time.Now()
		_, w, err := speechcmd.GenerateCached(dsCfg, cachePath)
		ms := float64(time.Since(warmStart).Nanoseconds()) / 1e6
		if err != nil || !w {
			fmt.Fprintf(os.Stderr, "kws-bench: warm cache load failed (warm=%v err=%v)\n", w, err)
			os.Exit(1)
		}
		if rep == 0 || ms < warmMs {
			warmMs = ms
		}
	}

	base := train.Config{
		Epochs:    epochs,
		BatchSize: 20,
		Schedule:  train.StepSchedule{Base: 0.01, Every: epochs + 1, Factor: 0.3},
		Loss:      train.MultiClassHinge,
		Seed:      seed,
	}

	rep := trainReport{
		Schema:          "kws-train-bench/v2",
		Generated:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		Model:           "st-hybrid",
		WidthMult:       width,
		Seed:            seed,
		SamplesPerClass: samplesPerCls,
		TrainSamples:    len(ds.Train),
		Epochs:          epochs,
		BatchSize:       base.BatchSize,
		Reps:            reps,
		CacheColdMs:     coldMs,
		CacheWarmMs:     warmMs,
		CacheSpeedup:    coldMs / warmMs,
	}

	// Worker rows run under GOMAXPROCS=workers (restored after each row), so
	// the per-count scaling curve reflects the core budget a deployment at
	// that width would actually get; the serial row keeps the host default.
	prevProcs := runtime.GOMAXPROCS(0)
	var serial, w4 trainResult
	for _, workers := range []int{0, 1, 2, 4, 8} {
		if workers > 0 {
			runtime.GOMAXPROCS(workers)
		}
		r := timedRun(&base, ds, width, seed, workers, reps)
		runtime.GOMAXPROCS(prevProcs)
		rep.Results = append(rep.Results, r)
		switch workers {
		case 0:
			serial = r
		case 4:
			w4 = r
		}
		fmt.Fprintf(os.Stderr, "kws-bench: %-14s %8.1f samples/sec  %12.0f ns/step  loss %.4f\n",
			r.Name, r.SamplesPerSec, r.NsPerStep, r.FinalLoss)
	}
	rep.SpeedupW4VsSerial = w4.SamplesPerSec / serial.SamplesPerSec

	// Cross-check the reduction-order determinism claim in the shipped
	// artifact, not just the test suite: Workers=1 and Workers=4 must land
	// on bit-identical final losses.
	bx, by := speechcmd.Batch(ds.Train, 0, len(ds.Train))
	var losses [2]float64
	for i, workers := range []int{1, 4} {
		mcfg := core.DefaultConfig(speechcmd.NumClasses)
		mcfg.WidthMult = width
		m := core.New(mcfg, rand.New(rand.NewSource(seed)))
		cfg := base
		cfg.Workers = workers
		losses[i] = train.Run(m, bx, by, cfg).FinalLoss
	}
	rep.DeterminismVerified = losses[0] == losses[1]

	// Recorded after the benchmarks so the report reflects the environment
	// the numbers were actually measured under.
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	rep.Note = "schema v2: worker rows are measured under GOMAXPROCS=workers (recorded per row)"
	if rep.NumCPU == 1 {
		rep.Note += "; single-CPU host: worker replicas timeslice one core, so parallel samples/sec cannot exceed serial here; the speedup gate applies on multi-core hosts"
	}

	writeReport(rep, out)
	fmt.Printf("kws-bench: train serial %.1f samples/sec, workers=4 %.1f (%.2fx), cache cold %.0fms warm %.1fms (%.0fx) -> %s\n",
		serial.SamplesPerSec, w4.SamplesPerSec, rep.SpeedupW4VsSerial, coldMs, warmMs, rep.CacheSpeedup, out)
}
