package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/deploy"
	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// serveReport is the BENCH_serve.json schema: the serving daemon's core
// driven in-process by the load generator at four-digit session counts,
// with fault injection on a quarter of the sessions.
type serveReport struct {
	Schema     string `json:"schema"`
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	Seed          int64   `json:"seed"`
	Density       float64 `json:"density"`
	Lanes         int     `json:"lanes"`
	LaneBatch     int     `json:"lane_batch"`
	FaultFraction float64 `json:"fault_fraction"`
	SecondsPerSes float64 `json:"audio_seconds_per_session"`

	Load serve.LoadReport `json:"load"`

	// PeakConcurrent is the high-water mark of simultaneously open
	// sessions, sampled from the live gauge while the load ran.
	PeakConcurrent int64 `json:"peak_concurrent_sessions"`

	// Hop latency across every session, from the shared registry: the time
	// from a detector hop starting to its posterior landing, inference
	// lane wait included.
	Hops     int64 `json:"hops"`
	HopP50Ns int64 `json:"hop_p50_ns"`
	HopP95Ns int64 `json:"hop_p95_ns"`
	HopP99Ns int64 `json:"hop_p99_ns"`

	// HopE2EP99Ns is the end-to-end hop pipeline latency (ingress → lane →
	// infer → done) from the tracing layer attached to the main run.
	HopE2EP99Ns int64 `json:"hop_e2e_p99_ns"`

	// Absorbed counts every fault the server ate without letting it out of
	// its session, by kind.
	Absorbed map[string]int64 `json:"absorbed"`

	// FlightEvents is how many structured events the flight recorder logged
	// over the run (admissions, trips, quarantines, sheds, drain phases).
	FlightEvents uint64 `json:"flight_events"`

	DrainSessions  int   `json:"drain_sessions"`
	DrainForced    int   `json:"drain_forced"`
	DrainLeaked    int   `json:"drain_leaked"`
	DrainElapsedMs int64 `json:"drain_elapsed_ms"`

	// TelemetryOverhead compares a fully observed serving run (registry +
	// flight recorder + hop tracing + engine lane counters) against a
	// detached run of the same load. The gate: attached throughput within
	// 10% of detached, and the engine must still take the SWAR lane path
	// (attaching telemetry must not demote batches to scalar).
	TelemetryOverhead overheadReport `json:"telemetry_overhead"`

	// Incremental reruns a fault-injected load with Config.Incremental —
	// per-session engine hop caches instead of the shared lanes — and
	// reports the hop-cache hit rate alongside throughput.
	Incremental incrementalReport `json:"incremental"`

	Note string `json:"note,omitempty"`
}

// overheadReport is the telemetry-overhead row: detached vs attached
// throughput on an identical clean load, best of two runs each.
type overheadReport struct {
	Sessions              int     `json:"sessions"`
	DetachedSamplesPerSec float64 `json:"detached_samples_per_sec"`
	AttachedSamplesPerSec float64 `json:"attached_samples_per_sec"`
	// OverheadFrac = 1 - attached/detached, clamped at 0.
	OverheadFrac float64 `json:"overhead_frac"`
	// LaneBatches counts lane dispatches the serve layer coalesced;
	// EngineLaneFrames counts frames the engine classified on the SWAR lane
	// path. LanePathRetained requires frames on the lane path whenever
	// batches were dispatched.
	LaneBatches      int64 `json:"lane_batches"`
	EngineLaneFrames int64 `json:"engine_lane_frames"`
	LanePathRetained bool  `json:"lane_path_retained"`
	// Pass gates the row: overhead <= 10% and the lane path retained.
	Pass bool `json:"pass"`
}

// incrementalReport is the temporal-cache serving row: the same load
// generator with Config.Incremental on, so each session hops through its own
// engine hop cache. Gaps from the fault injector's dropped chunks invalidate
// caches mid-stream, so the hit rate below is a faulted-load figure, not a
// best case. Pass requires no clean session lost and a majority hit rate.
type incrementalReport struct {
	Sessions              int     `json:"sessions"`
	FaultFraction         float64 `json:"fault_fraction"`
	SamplesPerSec         float64 `json:"samples_per_sec"`
	CleanSessionsLost     int     `json:"clean_sessions_lost"`
	HopCacheHits          int64   `json:"hop_cache_hits"`
	HopCacheMisses        int64   `json:"hop_cache_misses"`
	HopCacheInvalidations int64   `json:"hop_cache_invalidations"`
	HitRate               float64 `json:"hit_rate"`
	HopP50Ns              int64   `json:"hop_p50_ns"`
	HopP99Ns              int64   `json:"hop_p99_ns"`
	Pass                  bool    `json:"pass"`
}

// benchIncremental drives a fault-injected load through the incremental
// serving pipeline and reads the cache ledger off the run's registry.
func benchIncremental(seed int64, density float64, sessions int, faultFrac float64) incrementalReport {
	reg := telemetry.NewRegistry()
	eng := deploy.SyntheticEngine(seed, density)
	srv, err := serve.New(serve.Config{
		Engine:          eng,
		SampleRate:      4000,
		Incremental:     true,
		MaxSessions:     sessions + 64,
		IdleTimeout:     60 * time.Second,
		ClassifyTimeout: 30 * time.Second,
		Registry:        reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kws-bench:", err)
		os.Exit(1)
	}
	load := serve.RunLoad(serve.DirectTarget{Srv: srv}, serve.LoadConfig{
		Sessions:      sessions,
		FaultFraction: faultFrac,
		Seconds:       2,
		ChunkMs:       250,
		Seed:          seed + 3,
		PushRetries:   400,
		RetryEvery:    5 * time.Millisecond,
		WaitClose:     120 * time.Second,
		Fault: faultinject.StreamConfig{
			PNaNBurst: 0.1, PClip: 0.05, PTruncate: 0.05, PDropChunk: 0.05,
			PSwap: 0.05, PStall: 0.02, PAbort: 0.02,
			StallMin: time.Millisecond, StallMax: 10 * time.Millisecond,
		},
	})
	dctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	srv.Drain(dctx)
	cancel()

	hop := reg.LatencyHistogram("stream.hop.ns").Snapshot(false)
	rep := incrementalReport{
		Sessions:              sessions,
		FaultFraction:         faultFrac,
		SamplesPerSec:         load.SamplesPerSec,
		CleanSessionsLost:     load.CleanSessionsLost,
		HopCacheHits:          reg.Counter("stream.hop.cache.hits").Value(),
		HopCacheMisses:        reg.Counter("stream.hop.cache.misses").Value(),
		HopCacheInvalidations: reg.Counter("stream.hop.cache.invalidations").Value(),
		HopP50Ns:              hop.P50,
		HopP99Ns:              hop.P99,
	}
	if total := rep.HopCacheHits + rep.HopCacheMisses; total > 0 {
		rep.HitRate = float64(rep.HopCacheHits) / float64(total)
	}
	rep.Pass = rep.CleanSessionsLost == 0 && rep.HitRate >= 0.5
	return rep
}

// benchServe drives the serving core with cfgSessions concurrent sessions
// in-process (no TCP, so the numbers isolate the serving machinery) and
// writes BENCH_serve.json. The run fails loudly if any clean session is
// lost or fewer sessions are sustained than the thousand-session headline.
func benchServe(out string, seed int64, density float64, sessions int, faultFrac float64) {
	reg := telemetry.NewRegistry()
	eng := deploy.SyntheticEngine(seed, density)
	lanes := runtime.NumCPU() / 2
	if lanes < 1 {
		lanes = 1
	}
	const laneBatch = 16
	flight := telemetry.NewFlightRecorder(1 << 14)
	traces := telemetry.NewTraceStore(1 << 12)
	srv, err := serve.New(serve.Config{
		Engine:          eng,
		SampleRate:      4000,
		MaxSessions:     sessions + 64,
		IdleTimeout:     60 * time.Second,
		ClassifyTimeout: 30 * time.Second,
		Lanes:           lanes,
		LaneBatch:       laneBatch,
		Registry:        reg,
		Flight:          flight,
		Traces:          traces,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kws-bench:", err)
		os.Exit(1)
	}

	// Sample the live session gauge for the peak-concurrency headline.
	quit := make(chan struct{})
	sampled := make(chan int64)
	go func() {
		g := reg.Gauge("serve.sessions.active")
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		var peak int64
		for {
			select {
			case <-t.C:
				if v := g.Value(); v > peak {
					peak = v
				}
			case <-quit:
				sampled <- peak
				return
			}
		}
	}()

	const secondsPer = 1.5
	load := serve.RunLoad(serve.DirectTarget{Srv: srv}, serve.LoadConfig{
		Sessions:      sessions,
		FaultFraction: faultFrac,
		Seconds:       secondsPer,
		ChunkMs:       250,
		Seed:          seed + 1,
		PushRetries:   400,
		RetryEvery:    5 * time.Millisecond,
		WaitClose:     120 * time.Second,
		Fault: faultinject.StreamConfig{
			PNaNBurst: 0.1, PClip: 0.05, PTruncate: 0.05, PDropChunk: 0.05,
			PSwap: 0.05, PStall: 0.02, PAbort: 0.02,
			StallMin: time.Millisecond, StallMax: 10 * time.Millisecond,
		},
	})
	close(quit)
	peak := <-sampled

	dctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	st := srv.Drain(dctx)
	cancel()

	hop := reg.LatencyHistogram("stream.hop.ns").Snapshot(false)
	hopE2E := reg.LatencyHistogram("serve.hop.e2e.ns").Snapshot(false)
	rep := serveReport{
		Schema:         "kws-serve-bench/v3",
		Generated:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Seed:           seed,
		Density:        density,
		Lanes:          lanes,
		LaneBatch:      laneBatch,
		FaultFraction:  faultFrac,
		SecondsPerSes:  secondsPer,
		Load:           load,
		PeakConcurrent: peak,
		Hops:           reg.Counter("stream.hops").Value(),
		HopP50Ns:       hop.P50,
		HopP95Ns:       hop.P95,
		HopP99Ns:       hop.P99,
		HopE2EP99Ns:    hopE2E.P99,
		FlightEvents:   flight.Total(),
		Absorbed: map[string]int64{
			"scrubbed_samples":   reg.Counter("stream.faults.scrubbed").Value(),
			"clipped_samples":    reg.Counter("stream.faults.clipped").Value(),
			"concealed_samples":  reg.Counter("stream.faults.concealed").Value(),
			"bad_posteriors":     reg.Counter("stream.faults.bad_posteriors").Value(),
			"watchdog_resets":    reg.Counter("stream.faults.watchdog_resets").Value(),
			"fault_score":        reg.Counter("serve.faults.absorbed").Value(),
			"panics_recovered":   reg.Counter("serve.faults.panics_recovered").Value(),
			"breaker_trips":      reg.Counter("serve.breaker.trips").Value(),
			"quarantined":        reg.Counter("serve.sessions.quarantined").Value(),
			"backpressure_drops": reg.Counter("serve.chunks.backpressure_rejected").Value(),
		},
		DrainSessions:  st.Sessions,
		DrainForced:    st.Forced,
		DrainLeaked:    st.Leaked,
		DrainElapsedMs: st.Elapsed.Milliseconds(),
	}
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	if rep.NumCPU == 1 {
		rep.Note = "single-CPU host: all sessions timeslice one core, so hop latency reflects queueing, not engine speed"
	}
	rep.TelemetryOverhead = benchTelemetryOverhead(seed, density)
	rep.Incremental = benchIncremental(seed, density, 200, faultFrac)

	if load.CleanSessionsLost > 0 {
		fmt.Fprintf(os.Stderr, "kws-bench: REGRESSION: %d clean sessions lost under fault load\n", load.CleanSessionsLost)
	}
	if load.SessionsSustained < 1000 && sessions >= 1000 {
		fmt.Fprintf(os.Stderr, "kws-bench: REGRESSION: only %d/%d sessions sustained (headline: >=1000)\n",
			load.SessionsSustained, sessions)
	}
	if !rep.TelemetryOverhead.Pass {
		fmt.Fprintf(os.Stderr, "kws-bench: REGRESSION: telemetry overhead %.1f%% (gate 10%%), lane path retained=%v\n",
			rep.TelemetryOverhead.OverheadFrac*100, rep.TelemetryOverhead.LanePathRetained)
	}
	if !rep.Incremental.Pass {
		fmt.Fprintf(os.Stderr, "kws-bench: REGRESSION: incremental serving hit rate %.0f%% (gate 50%%), clean lost %d\n",
			rep.Incremental.HitRate*100, rep.Incremental.CleanSessionsLost)
	}

	writeReport(rep, out)
	fmt.Printf("kws-bench: serve %d sessions (%d faulty, peak %d concurrent), %d sustained, %d clean lost, hop p50 %.2fms p99 %.2fms, telemetry overhead %.1f%%, incremental hit rate %.0f%%, drain %dms -> %s\n",
		load.Sessions, load.FaultySessions, rep.PeakConcurrent, load.SessionsSustained,
		load.CleanSessionsLost, float64(rep.HopP50Ns)/1e6, float64(rep.HopP99Ns)/1e6,
		rep.TelemetryOverhead.OverheadFrac*100, rep.Incremental.HitRate*100, rep.DrainElapsedMs, out)
}

// overheadSessions sizes the detached/attached comparison runs: enough load
// to coalesce real lane batches, short enough to run twice per mode.
const overheadSessions = 200

// benchTelemetryOverhead measures what the full observability stack costs:
// an identical clean load is slammed through the serving core detached (no
// registry, no flight recorder, no tracing) and attached (all of it, plus
// engine lane counters), best of two runs each, and the throughput delta is
// the overhead. The attached run also proves the engine still took the SWAR
// lane path — attaching telemetry must not demote batches to scalar.
func benchTelemetryOverhead(seed int64, density float64) overheadReport {
	best := func(attached bool) (sps float64, batches, frames int64) {
		for i := 0; i < 2; i++ {
			s, b, f := overheadRun(seed+int64(i), density, attached)
			if s > sps {
				sps, batches, frames = s, b, f
			}
		}
		return
	}
	detached, _, _ := best(false)
	attached, laneBatches, laneFrames := best(true)

	rep := overheadReport{
		Sessions:              overheadSessions,
		DetachedSamplesPerSec: detached,
		AttachedSamplesPerSec: attached,
		LaneBatches:           laneBatches,
		EngineLaneFrames:      laneFrames,
		LanePathRetained:      laneBatches == 0 || laneFrames > 0,
	}
	if detached > 0 && attached < detached {
		rep.OverheadFrac = 1 - attached/detached
	}
	rep.Pass = rep.OverheadFrac <= 0.10 && rep.LanePathRetained
	return rep
}

// overheadRun drives one clean in-process load and reports its sustained
// sample throughput. Attached runs carry the registry, flight recorder, hop
// tracing, and engine telemetry; detached runs none of it.
func overheadRun(seed int64, density float64, attached bool) (samplesPerSec float64, laneBatches, laneFrames int64) {
	eng := deploy.SyntheticEngine(seed, density)
	lanes := runtime.NumCPU() / 2
	if lanes < 1 {
		lanes = 1
	}
	cfg := serve.Config{
		Engine:          eng,
		SampleRate:      4000,
		MaxSessions:     overheadSessions + 64,
		IdleTimeout:     60 * time.Second,
		ClassifyTimeout: 30 * time.Second,
		Lanes:           lanes,
		LaneBatch:       16,
	}
	var reg *telemetry.Registry
	if attached {
		reg = telemetry.NewRegistry()
		eng.EnableTelemetry(reg, nil)
		cfg.Registry = reg
		cfg.Flight = telemetry.NewFlightRecorder(1 << 13)
		cfg.Traces = telemetry.NewTraceStore(1 << 12)
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kws-bench:", err)
		os.Exit(1)
	}
	load := serve.RunLoad(serve.DirectTarget{Srv: srv}, serve.LoadConfig{
		Sessions:    overheadSessions,
		Seconds:     1,
		ChunkMs:     250,
		Seed:        seed + 2,
		PushRetries: 400,
		RetryEvery:  5 * time.Millisecond,
		WaitClose:   60 * time.Second,
	})
	dctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	srv.Drain(dctx)
	cancel()
	if attached {
		laneBatches = reg.Histogram("serve.lane.batch_frames", nil).Snapshot(false).Count
		laneFrames = reg.Counter("engine.lane.frames").Value()
	}
	return load.SamplesPerSec, laneBatches, laneFrames
}
