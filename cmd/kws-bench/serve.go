package main

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/deploy"
	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

// serveReport is the BENCH_serve.json schema: the serving daemon's core
// driven in-process by the load generator at four-digit session counts,
// with fault injection on a quarter of the sessions.
type serveReport struct {
	Schema     string `json:"schema"`
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	Seed          int64   `json:"seed"`
	Density       float64 `json:"density"`
	Lanes         int     `json:"lanes"`
	LaneBatch     int     `json:"lane_batch"`
	FaultFraction float64 `json:"fault_fraction"`
	SecondsPerSes float64 `json:"audio_seconds_per_session"`

	Load serve.LoadReport `json:"load"`

	// PeakConcurrent is the high-water mark of simultaneously open
	// sessions, sampled from the live gauge while the load ran.
	PeakConcurrent int64 `json:"peak_concurrent_sessions"`

	// Hop latency across every session, from the shared registry: the time
	// from a detector hop starting to its posterior landing, inference
	// lane wait included.
	Hops     int64 `json:"hops"`
	HopP50Ns int64 `json:"hop_p50_ns"`
	HopP95Ns int64 `json:"hop_p95_ns"`
	HopP99Ns int64 `json:"hop_p99_ns"`

	// Absorbed counts every fault the server ate without letting it out of
	// its session, by kind.
	Absorbed map[string]int64 `json:"absorbed"`

	DrainSessions  int   `json:"drain_sessions"`
	DrainForced    int   `json:"drain_forced"`
	DrainLeaked    int   `json:"drain_leaked"`
	DrainElapsedMs int64 `json:"drain_elapsed_ms"`

	Note string `json:"note,omitempty"`
}

// benchServe drives the serving core with cfgSessions concurrent sessions
// in-process (no TCP, so the numbers isolate the serving machinery) and
// writes BENCH_serve.json. The run fails loudly if any clean session is
// lost or fewer sessions are sustained than the thousand-session headline.
func benchServe(out string, seed int64, density float64, sessions int, faultFrac float64) {
	reg := telemetry.NewRegistry()
	eng := deploy.SyntheticEngine(seed, density)
	lanes := runtime.NumCPU() / 2
	if lanes < 1 {
		lanes = 1
	}
	const laneBatch = 16
	srv, err := serve.New(serve.Config{
		Engine:          eng,
		SampleRate:      4000,
		MaxSessions:     sessions + 64,
		IdleTimeout:     60 * time.Second,
		ClassifyTimeout: 30 * time.Second,
		Lanes:           lanes,
		LaneBatch:       laneBatch,
		Registry:        reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "kws-bench:", err)
		os.Exit(1)
	}

	// Sample the live session gauge for the peak-concurrency headline.
	quit := make(chan struct{})
	sampled := make(chan int64)
	go func() {
		g := reg.Gauge("serve.sessions.active")
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		var peak int64
		for {
			select {
			case <-t.C:
				if v := g.Value(); v > peak {
					peak = v
				}
			case <-quit:
				sampled <- peak
				return
			}
		}
	}()

	const secondsPer = 1.5
	load := serve.RunLoad(serve.DirectTarget{Srv: srv}, serve.LoadConfig{
		Sessions:      sessions,
		FaultFraction: faultFrac,
		Seconds:       secondsPer,
		ChunkMs:       250,
		Seed:          seed + 1,
		PushRetries:   400,
		RetryEvery:    5 * time.Millisecond,
		WaitClose:     120 * time.Second,
		Fault: faultinject.StreamConfig{
			PNaNBurst: 0.1, PClip: 0.05, PTruncate: 0.05, PDropChunk: 0.05,
			PSwap: 0.05, PStall: 0.02, PAbort: 0.02,
			StallMin: time.Millisecond, StallMax: 10 * time.Millisecond,
		},
	})
	close(quit)
	peak := <-sampled

	dctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	st := srv.Drain(dctx)
	cancel()

	hop := reg.LatencyHistogram("stream.hop.ns").Snapshot(false)
	rep := serveReport{
		Schema:         "kws-serve-bench/v1",
		Generated:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		Seed:           seed,
		Density:        density,
		Lanes:          lanes,
		LaneBatch:      laneBatch,
		FaultFraction:  faultFrac,
		SecondsPerSes:  secondsPer,
		Load:           load,
		PeakConcurrent: peak,
		Hops:           reg.Counter("stream.hops").Value(),
		HopP50Ns:       hop.P50,
		HopP95Ns:       hop.P95,
		HopP99Ns:       hop.P99,
		Absorbed: map[string]int64{
			"scrubbed_samples":   reg.Counter("stream.faults.scrubbed").Value(),
			"clipped_samples":    reg.Counter("stream.faults.clipped").Value(),
			"concealed_samples":  reg.Counter("stream.faults.concealed").Value(),
			"bad_posteriors":     reg.Counter("stream.faults.bad_posteriors").Value(),
			"watchdog_resets":    reg.Counter("stream.faults.watchdog_resets").Value(),
			"fault_score":        reg.Counter("serve.faults.absorbed").Value(),
			"panics_recovered":   reg.Counter("serve.faults.panics_recovered").Value(),
			"breaker_trips":      reg.Counter("serve.breaker.trips").Value(),
			"quarantined":        reg.Counter("serve.sessions.quarantined").Value(),
			"backpressure_drops": reg.Counter("serve.chunks.backpressure_rejected").Value(),
		},
		DrainSessions:  st.Sessions,
		DrainForced:    st.Forced,
		DrainLeaked:    st.Leaked,
		DrainElapsedMs: st.Elapsed.Milliseconds(),
	}
	rep.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.NumCPU = runtime.NumCPU()
	if rep.NumCPU == 1 {
		rep.Note = "single-CPU host: all sessions timeslice one core, so hop latency reflects queueing, not engine speed"
	}

	if load.CleanSessionsLost > 0 {
		fmt.Fprintf(os.Stderr, "kws-bench: REGRESSION: %d clean sessions lost under fault load\n", load.CleanSessionsLost)
	}
	if load.SessionsSustained < 1000 && sessions >= 1000 {
		fmt.Fprintf(os.Stderr, "kws-bench: REGRESSION: only %d/%d sessions sustained (headline: >=1000)\n",
			load.SessionsSustained, sessions)
	}

	writeReport(rep, out)
	fmt.Printf("kws-bench: serve %d sessions (%d faulty, peak %d concurrent), %d sustained, %d clean lost, hop p50 %.2fms p99 %.2fms, drain %dms -> %s\n",
		load.Sessions, load.FaultySessions, rep.PeakConcurrent, load.SessionsSustained,
		load.CleanSessionsLost, float64(rep.HopP50Ns)/1e6, float64(rep.HopP99Ns)/1e6,
		rep.DrainElapsedMs, out)
}
