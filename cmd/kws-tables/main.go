// Command kws-tables regenerates the paper's evaluation tables (1-7) on the
// synthetic speech-commands corpus.
//
// Cost columns (muls, adds, ops, model size, memory footprint) are computed
// analytically at the paper's full model width; accuracy columns are
// measured by training each architecture at the configured reduced scale.
//
// Usage:
//
//	kws-tables                 # all tables at the standard scale
//	kws-tables -table 4        # just Table 4
//	kws-tables -width 0.5 -samples 150 -epochs 45   # bigger budget
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/exp"
)

func main() {
	table := flag.Int("table", 0, "table number 1-7, 8 = Section 5 comparison (0 = all incl. 8)")
	ablations := flag.Bool("ablations", false, "also run the ablation studies (scaling granularity, depthwise width, addition budget)")
	width := flag.Float64("width", exp.Standard.WidthMult, "model width multiplier for accuracy training")
	samples := flag.Int("samples", exp.Standard.SamplesPerCls, "synthetic corpus samples per class")
	epochs := flag.Int("epochs", exp.Standard.Epochs, "epochs per training stage")
	seed := flag.Int64("seed", 1, "corpus and initialisation seed")
	quiet := flag.Bool("quiet", false, "suppress training progress")
	flag.Parse()

	scale := exp.Scale{WidthMult: *width, SamplesPerCls: *samples, Epochs: *epochs, Seed: *seed}
	var log io.Writer = os.Stderr
	if *quiet {
		log = nil
	}
	ctx := exp.NewContext(scale, log)

	tables := []int{1, 2, 3, 4, 5, 6, 7, 8}
	if *table != 0 {
		tables = []int{*table}
	}
	start := time.Now()
	for _, n := range tables {
		t, err := exp.Generate(ctx, n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
	}
	if *ablations {
		for _, t := range exp.Ablations(ctx) {
			t.Render(os.Stdout)
		}
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Second))
}
