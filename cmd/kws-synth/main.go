// Command kws-synth exports the synthetic speech-commands corpus for
// inspection: one WAV file per requested utterance plus a CSV manifest, and
// optionally the full featurised corpus as a gob file for byte-identical
// reuse across experiments.
//
// Usage:
//
//	kws-synth -dir ./corpus -per-word 3          # WAVs for every word
//	kws-synth -words yes,no -per-word 5
//	kws-synth -gob corpus.gob -samples 120       # featurised corpus only
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/audio"
	"repro/internal/speechcmd"
)

func main() {
	dir := flag.String("dir", "", "write WAV files and manifest.csv into this directory")
	words := flag.String("words", "", "comma-separated word list (default: all target words + silence)")
	perWord := flag.Int("per-word", 3, "utterances per word")
	gobOut := flag.String("gob", "", "also write the featurised corpus (gob) to this file")
	samples := flag.Int("samples", 120, "samples per class for -gob")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	if *dir == "" && *gobOut == "" {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -dir and/or -gob")
		os.Exit(1)
	}
	cfg := speechcmd.DefaultConfig()
	cfg.Seed = *seed

	if *dir != "" {
		list := append(append([]string(nil), speechcmd.TargetWords...), "silence")
		if *words != "" {
			list = strings.Split(*words, ",")
		}
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fatal(err)
		}
		mf, err := os.Create(filepath.Join(*dir, "manifest.csv"))
		if err != nil {
			fatal(err)
		}
		cw := csv.NewWriter(mf)
		if err := cw.Write([]string{"file", "word", "sample_rate"}); err != nil {
			fatal(err)
		}
		rng := rand.New(rand.NewSource(*seed))
		written := 0
		for _, w := range list {
			word := strings.TrimSpace(w)
			synthWord := word
			if synthWord == "silence" {
				synthWord = ""
			}
			for i := 0; i < *perWord; i++ {
				wave := speechcmd.SynthesizeUtterance(synthWord, cfg, rng)
				name := fmt.Sprintf("%s_%02d.wav", word, i)
				f, err := os.Create(filepath.Join(*dir, name))
				if err != nil {
					fatal(err)
				}
				if err := audio.WriteWAV(f, wave, cfg.SampleRate); err != nil {
					fatal(err)
				}
				f.Close()
				if err := cw.Write([]string{name, word, fmt.Sprint(cfg.SampleRate)}); err != nil {
					fatal(err)
				}
				written++
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			fatal(err)
		}
		mf.Close()
		fmt.Printf("wrote %d WAV files and manifest.csv to %s\n", written, *dir)
	}

	if *gobOut != "" {
		cfg.SamplesPerCls = *samples
		fmt.Fprintf(os.Stderr, "generating featurised corpus (%d samples/class)...\n", *samples)
		ds := speechcmd.Generate(cfg)
		f, err := os.Create(*gobOut)
		if err != nil {
			fatal(err)
		}
		if err := ds.Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		info, _ := os.Stat(*gobOut)
		fmt.Printf("wrote corpus (%d train / %d val / %d test) to %s (%d bytes)\n",
			len(ds.Train), len(ds.Val), len(ds.Test), *gobOut, info.Size())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
