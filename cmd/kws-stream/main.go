// Command kws-stream runs always-on keyword detection over an audio stream:
// either a WAV file or a synthetic scripted stream. A small DS-CNN is
// trained in-process (or loaded), and detections print with their stream
// timestamps. With -telemetry-addr the process also serves live /metrics,
// /healthz, /debug/vars and /debug/pprof endpoints, and -trace-out captures
// per-layer engine spans as a Chrome trace-event file.
//
// Usage:
//
//	kws-stream                         # synthetic demo stream
//	kws-stream -wav recording.wav      # detect keywords in a recording
//	kws-stream -script yes,_,go,_,left # build the stream from words (_ = silence)
//	kws-stream -engine model.thnt      # classify with a packed integer engine
//	kws-stream -telemetry-addr :8080   # expose metrics/health while streaming
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/audio"
	"repro/internal/deploy"
	"repro/internal/faultinject"
	"repro/internal/models"
	"repro/internal/speechcmd"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/train"
)

func main() {
	wavIn := flag.String("wav", "", "stream this WAV file through the detector")
	script := flag.String("script", "_,_,yes,_,go,_,_,left,_", "comma-separated words for a synthetic stream (_ = silence)")
	width := flag.Float64("width", 0.2, "classifier width multiplier")
	samples := flag.Int("samples", 40, "training samples per class")
	epochs := flag.Int("epochs", 18, "training epochs")
	threshold := flag.Float64("threshold", 0.5, "smoothed-posterior detection threshold")
	engine := flag.String("engine", "", "classify with this packed integer model (.thnt) instead of training a float model")
	int8Pol := flag.Bool("int8", false, "run the packed engine fully 8-bit (PolicyInt8), overriding the model's stored policy")
	mixedPol := flag.Bool("mixed", false, "pin the packed engine to the mixed 8/16-bit policy, overriding the model's stored policy")
	incremental := flag.Bool("incremental", false, "temporal-cache pipeline: featurise and infer only what each hop changed (bit-identical posteriors; hop snaps down to the 20 ms frame stride, 250 ms -> 240 ms)")
	faultAt := flag.Float64("fault-at", -1, "inject a fault window starting at this second (demo; <0 disables)")
	faultMs := flag.Int("fault-ms", 500, "fault window duration in milliseconds")
	faultKind := flag.String("fault", "nan", "fault kind: nan|dropout|dc|spike")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/vars and /debug/pprof on this address (e.g. :8080; empty disables)")
	traceOut := flag.String("trace-out", "", "write engine spans to this Chrome trace-event JSON file on exit")
	hold := flag.Duration("hold", 0, "keep the telemetry server alive this long after the stream ends (e.g. 5s)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	log := telemetry.NewLogger(os.Stderr, telemetry.ParseLevel(*logLevel), "kws-stream")

	// Telemetry is opt-in: with no addr and no trace file everything below
	// runs against nil instruments, which cost one pointer compare.
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	if *telemetryAddr != "" {
		reg = telemetry.Default
	}
	if *traceOut != "" {
		if reg == nil {
			reg = telemetry.Default
		}
		tracer = telemetry.NewTracer(0)
	}

	cfg := speechcmd.DefaultConfig()
	cfg.SamplesPerCls = *samples
	cfg.Seed = *seed

	// The corpus is always generated: even a packed engine needs its
	// feature-normalisation statistics to match training.
	log.Info("generating corpus", "samples_per_class", *samples)
	ds := speechcmd.Generate(cfg)

	var cls stream.Classifier
	var eng *deploy.Engine
	if *engine != "" {
		f, err := os.Open(*engine)
		if err != nil {
			fatal(log, err)
		}
		eng, err = deploy.ReadEngine(f)
		f.Close()
		if err != nil {
			fatal(log, fmt.Errorf("loading %s: %w", *engine, err))
		}
		if n := int(eng.Tree.NumClasses); n != speechcmd.NumClasses {
			fatal(log, fmt.Errorf("%s has %d classes, detector needs %d", *engine, n, speechcmd.NumClasses))
		}
		// Policy flags override whatever a v3 model stored; the Detector
		// routes through Engine.Infer, which honours e.Policy per frame.
		if *int8Pol {
			eng.Policy = deploy.PolicyInt8
		} else if *mixedPol {
			eng.Policy = deploy.PolicyMixed
		}
		if reg != nil {
			eng.EnableTelemetry(reg, tracer)
		}
		log.Info("using packed engine", "path", *engine, "policy", eng.Policy.String())
		cls = stream.NewEngineClassifier(eng)
	} else {
		log.Info("training classifier", "width", *width, "epochs", *epochs)
		x, y := speechcmd.Batch(ds.Train, 0, len(ds.Train))
		vx, vy := speechcmd.Batch(ds.Val, 0, len(ds.Val))
		rng := rand.New(rand.NewSource(*seed))
		m := models.NewDSCNN(speechcmd.NumClasses, *width, rng)
		train.Run(m, x, y, train.Config{
			Epochs:    *epochs,
			BatchSize: 20,
			Schedule:  train.StepSchedule{Base: 0.01, Every: *epochs/2 + 1, Factor: 0.3},
			Loss:      train.CrossEntropy,
			Seed:      *seed,
			Obs:       train.NewObs(reg),
			EvalX:     vx,
			EvalY:     vy,
		})
		tx, ty := speechcmd.Batch(ds.Test, 0, len(ds.Test))
		log.Info("classifier trained", "test_accuracy", train.Accuracy(m, tx, ty, 64))
		cls = &stream.ModelClassifier{Model: m, Classes: speechcmd.NumClasses}
	}

	var wave []float64
	if *wavIn != "" {
		f, err := os.Open(*wavIn)
		if err != nil {
			fatal(log, err)
		}
		samples, rate, err := audio.ReadWAV(f)
		f.Close()
		if err != nil {
			fatal(log, err)
		}
		wave = audio.Resample(samples, rate, cfg.SampleRate)
		log.Info("streaming wav", "path", *wavIn, "seconds", float64(len(wave))/float64(cfg.SampleRate))
	} else {
		wrng := rand.New(rand.NewSource(*seed + 99))
		for i, w := range strings.Split(*script, ",") {
			word := strings.TrimSpace(w)
			if word == "_" || word == "silence" {
				word = ""
			}
			label := word
			if label == "" {
				label = "(silence)"
			}
			log.Debug("script word", "second", i, "word", label)
			wave = append(wave, speechcmd.SynthesizeUtterance(word, cfg, wrng)...)
		}
	}

	// Optional fault injection, to demonstrate the detector surviving glitchy
	// capture hardware: the samples inside the window are corrupted and the
	// detector's sanitisation/watchdog counters report what was absorbed.
	if *faultAt >= 0 {
		start := int(*faultAt * float64(cfg.SampleRate))
		n := *faultMs * cfg.SampleRate / 1000
		switch *faultKind {
		case "nan":
			faultinject.NaNBurst(wave, start, n)
		case "dropout":
			faultinject.Dropout(wave, start, n)
		case "dc":
			faultinject.DCOffset(wave, start, n, 0.8)
		case "spike":
			faultinject.New(*seed).Spikes(wave[min(start, len(wave)):min(start+n, len(wave))], 32, 4.0)
		default:
			fatal(log, fmt.Errorf("unknown fault kind %q", *faultKind))
		}
		log.Warn("injected fault", "kind", *faultKind, "at_seconds", *faultAt, "duration_ms", *faultMs)
	}

	dcfg := stream.DefaultConfig(cfg.SampleRate)
	dcfg.IgnoreClass = speechcmd.SilenceClass
	dcfg.IgnoreClass2 = speechcmd.UnknownClass
	dcfg.Threshold = float32(*threshold)
	dcfg.Incremental = *incremental
	det := stream.NewDetector(dcfg, cls, ds.FeatMean, ds.FeatStd)
	det.AttachTelemetry(reg)

	// The health endpoint reflects the live pipeline: the loaded engine's
	// structural validity and the detector's posterior watchdog.
	if *telemetryAddr != "" {
		srv := telemetry.NewServer(reg, tracer)
		srv.AddCheck("detector", det.Health)
		if eng != nil {
			srv.AddCheck("engine", eng.Validate)
		}
		addr, err := srv.Start(*telemetryAddr)
		if err != nil {
			fatal(log, fmt.Errorf("telemetry server: %w", err))
		}
		defer srv.Close()
		log.Info("telemetry server listening", "addr", addr)
	}

	names := speechcmd.ClassNames()
	chunk := cfg.SampleRate / 10
	count := 0
	for lo := 0; lo < len(wave); lo += chunk {
		hi := lo + chunk
		if hi > len(wave) {
			hi = len(wave)
		}
		for _, ev := range det.Push(wave[lo:hi]) {
			fmt.Printf("%6.2fs  %-8s posterior %.2f\n",
				float64(ev.Sample)/float64(cfg.SampleRate), names[ev.Class], ev.Score)
			count++
		}
	}
	log.Info("stream finished", "detections", count)
	if st := det.Stats(); st != (stream.Stats{}) {
		log.Warn("faults absorbed",
			"scrubbed", st.Scrubbed, "clipped", st.Clipped, "concealed", st.Concealed,
			"bad_posteriors", st.BadPosteriors, "watchdog_resets", st.WatchdogResets)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(log, fmt.Errorf("creating trace file: %w", err))
		}
		if err := tracer.WriteJSON(f); err != nil {
			f.Close()
			fatal(log, fmt.Errorf("writing %s: %w", *traceOut, err))
		}
		if err := f.Close(); err != nil {
			fatal(log, fmt.Errorf("closing %s: %w", *traceOut, err))
		}
		log.Info("trace written", "path", *traceOut, "spans", tracer.Len(), "dropped", tracer.Dropped())
	}

	if *hold > 0 {
		log.Info("holding for scrapes", "duration", *hold)
		time.Sleep(*hold)
	}
}

func fatal(log *telemetry.Logger, err error) {
	log.Error(err.Error())
	os.Exit(1)
}
