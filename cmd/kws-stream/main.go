// Command kws-stream runs always-on keyword detection over an audio stream:
// either a WAV file or a synthetic scripted stream. A small DS-CNN is
// trained in-process (or loaded), and detections print with their stream
// timestamps.
//
// Usage:
//
//	kws-stream                         # synthetic demo stream
//	kws-stream -wav recording.wav      # detect keywords in a recording
//	kws-stream -script yes,_,go,_,left # build the stream from words (_ = silence)
//	kws-stream -engine model.thnt      # classify with a packed integer engine
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/audio"
	"repro/internal/deploy"
	"repro/internal/faultinject"
	"repro/internal/models"
	"repro/internal/speechcmd"
	"repro/internal/stream"
	"repro/internal/train"
)

func main() {
	wavIn := flag.String("wav", "", "stream this WAV file through the detector")
	script := flag.String("script", "_,_,yes,_,go,_,_,left,_", "comma-separated words for a synthetic stream (_ = silence)")
	width := flag.Float64("width", 0.2, "classifier width multiplier")
	samples := flag.Int("samples", 40, "training samples per class")
	epochs := flag.Int("epochs", 18, "training epochs")
	threshold := flag.Float64("threshold", 0.5, "smoothed-posterior detection threshold")
	engine := flag.String("engine", "", "classify with this packed integer model (.thnt) instead of training a float model")
	faultAt := flag.Float64("fault-at", -1, "inject a fault window starting at this second (demo; <0 disables)")
	faultMs := flag.Int("fault-ms", 500, "fault window duration in milliseconds")
	faultKind := flag.String("fault", "nan", "fault kind: nan|dropout|dc|spike")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	cfg := speechcmd.DefaultConfig()
	cfg.SamplesPerCls = *samples
	cfg.Seed = *seed

	// The corpus is always generated: even a packed engine needs its
	// feature-normalisation statistics to match training.
	fmt.Fprintln(os.Stderr, "generating corpus...")
	ds := speechcmd.Generate(cfg)

	var cls stream.Classifier
	if *engine != "" {
		f, err := os.Open(*engine)
		if err != nil {
			fatal(err)
		}
		eng, err := deploy.ReadEngine(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", *engine, err))
		}
		if n := int(eng.Tree.NumClasses); n != speechcmd.NumClasses {
			fatal(fmt.Errorf("%s has %d classes, detector needs %d", *engine, n, speechcmd.NumClasses))
		}
		fmt.Fprintf(os.Stderr, "using packed engine %s\n", *engine)
		cls = stream.NewEngineClassifier(eng)
	} else {
		fmt.Fprintln(os.Stderr, "training classifier...")
		x, y := speechcmd.Batch(ds.Train, 0, len(ds.Train))
		rng := rand.New(rand.NewSource(*seed))
		m := models.NewDSCNN(speechcmd.NumClasses, *width, rng)
		train.Run(m, x, y, train.Config{
			Epochs:    *epochs,
			BatchSize: 20,
			Schedule:  train.StepSchedule{Base: 0.01, Every: *epochs/2 + 1, Factor: 0.3},
			Loss:      train.CrossEntropy,
			Seed:      *seed,
		})
		tx, ty := speechcmd.Batch(ds.Test, 0, len(ds.Test))
		fmt.Fprintf(os.Stderr, "test accuracy: %.2f%%\n", 100*train.Accuracy(m, tx, ty, 64))
		cls = &stream.ModelClassifier{Model: m, Classes: speechcmd.NumClasses}
	}

	var wave []float64
	if *wavIn != "" {
		f, err := os.Open(*wavIn)
		if err != nil {
			fatal(err)
		}
		samples, rate, err := audio.ReadWAV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		wave = audio.Resample(samples, rate, cfg.SampleRate)
		fmt.Fprintf(os.Stderr, "streaming %s (%.1fs)\n", *wavIn, float64(len(wave))/float64(cfg.SampleRate))
	} else {
		wrng := rand.New(rand.NewSource(*seed + 99))
		for i, w := range strings.Split(*script, ",") {
			word := strings.TrimSpace(w)
			if word == "_" || word == "silence" {
				word = ""
			}
			label := word
			if label == "" {
				label = "(silence)"
			}
			fmt.Fprintf(os.Stderr, "  %ds: %s\n", i, label)
			wave = append(wave, speechcmd.SynthesizeUtterance(word, cfg, wrng)...)
		}
	}

	// Optional fault injection, to demonstrate the detector surviving glitchy
	// capture hardware: the samples inside the window are corrupted and the
	// detector's sanitisation/watchdog counters report what was absorbed.
	if *faultAt >= 0 {
		start := int(*faultAt * float64(cfg.SampleRate))
		n := *faultMs * cfg.SampleRate / 1000
		switch *faultKind {
		case "nan":
			faultinject.NaNBurst(wave, start, n)
		case "dropout":
			faultinject.Dropout(wave, start, n)
		case "dc":
			faultinject.DCOffset(wave, start, n, 0.8)
		case "spike":
			faultinject.New(*seed).Spikes(wave[min(start, len(wave)):min(start+n, len(wave))], 32, 4.0)
		default:
			fatal(fmt.Errorf("unknown fault kind %q", *faultKind))
		}
		fmt.Fprintf(os.Stderr, "injected %s fault at %.2fs for %dms\n", *faultKind, *faultAt, *faultMs)
	}

	dcfg := stream.DefaultConfig(cfg.SampleRate)
	dcfg.IgnoreClass = speechcmd.SilenceClass
	dcfg.IgnoreClass2 = speechcmd.UnknownClass
	dcfg.Threshold = float32(*threshold)
	det := stream.NewDetector(dcfg, cls, ds.FeatMean, ds.FeatStd)

	names := speechcmd.ClassNames()
	chunk := cfg.SampleRate / 10
	count := 0
	for lo := 0; lo < len(wave); lo += chunk {
		hi := lo + chunk
		if hi > len(wave) {
			hi = len(wave)
		}
		for _, ev := range det.Push(wave[lo:hi]) {
			fmt.Printf("%6.2fs  %-8s posterior %.2f\n",
				float64(ev.Sample)/float64(cfg.SampleRate), names[ev.Class], ev.Score)
			count++
		}
	}
	fmt.Fprintf(os.Stderr, "%d detections\n", count)
	if st := det.Stats(); st != (stream.Stats{}) {
		fmt.Fprintf(os.Stderr, "faults absorbed: %d scrubbed, %d clipped, %d concealed, %d bad posteriors, %d watchdog resets\n",
			st.Scrubbed, st.Clipped, st.Concealed, st.BadPosteriors, st.WatchdogResets)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
