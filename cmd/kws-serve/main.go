// Command kws-serve is the long-lived keyword-spotting daemon: it
// multiplexes thousands of concurrent audio sessions over one shared packed
// ternary engine (internal/serve), with per-session fault isolation,
// admission control, backpressure, load shedding, and graceful drain on
// SIGTERM. Telemetry — per-session and aggregate counters, hop-latency
// histograms, queue-depth gauges, /healthz, pprof — is served on
// -telemetry-addr.
//
// Usage:
//
//	kws-serve -addr :9470                        # serve a synthetic engine
//	kws-serve -engine model.thnt -addr :9470     # serve a trained model
//	kws-serve -addr :9470 -telemetry-addr :8080  # with live metrics/health
//	kws-serve -drive localhost:9470 -sessions 100 -fault-frac 0.3
//	                                             # load-generator mode
//
// The drive mode exits nonzero if any clean session is lost — the CI
// gauntlet uses it as the fault-isolation verdict.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/deploy"
	"repro/internal/faultinject"
	"repro/internal/serve"
	"repro/internal/speechcmd"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":9470", "TCP address to serve sessions on")
	telemetryAddr := flag.String("telemetry-addr", "", "serve /metrics, /healthz, /debug/pprof on this address (empty disables)")
	enginePath := flag.String("engine", "", "packed model (.thnt) to serve; empty builds a synthetic engine")
	density := flag.Float64("density", 0.35, "synthetic engine ternary density (with no -engine)")
	seed := flag.Int64("seed", 9, "synthetic engine weight seed")
	maxSessions := flag.Int("max-sessions", 10000, "admission cap on concurrent sessions")
	lanes := flag.Int("lanes", 0, "shared inference lanes (0 = NumCPU/2)")
	laneBatch := flag.Int("lane-batch", 16, "max frames coalesced per lane inference call")
	chunkQueue := flag.Int("queue", 8, "per-session chunk queue depth")
	idleTimeout := flag.Duration("idle-timeout", 30*time.Second, "reap sessions idle this long")
	readTimeout := flag.Duration("read-timeout", 15*time.Second, "per-chunk TCP read deadline")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-drain budget on SIGTERM")
	memLimit := flag.Int64("mem-limit", 0, "soft heap limit in bytes; above it the lowest-priority session is shed (0 disables)")
	incremental := flag.Bool("incremental", false, "temporal-cache pipeline: featurise and infer only what each hop changed (bit-identical posteriors; hop snaps 250 ms -> 240 ms)")
	threshold := flag.Float64("threshold", 0.6, "smoothed-posterior detection threshold")
	featMean := flag.Float64("feat-mean", 0, "feature normalisation mean (must match training)")
	featStd := flag.Float64("feat-std", 1, "feature normalisation std (must match training)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error")
	flightEvents := flag.Int("flight-events", 4096, "flight-recorder ring capacity in events (0 disables)")
	traceCap := flag.Int("trace-cap", 4096, "hop-trace store capacity in traces (0 disables)")
	sloHopP99 := flag.Duration("slo-hop-p99", 50*time.Millisecond, "hop-latency SLO: 99% of hops must finish within this")
	sloWindows := flag.String("slo-windows", "30s,2m,10m", "comma-separated SLO burn-rate windows, shortest first")
	sloAdaptive := flag.Bool("slo-adaptive", false, "tighten the session cap while the error budget burns (budget-aware degradation)")

	drive := flag.String("drive", "", "run as a load generator against this kws-serve address instead of serving")
	sessions := flag.Int("sessions", 100, "drive: concurrent sessions")
	faultFrac := flag.Float64("fault-frac", 0.3, "drive: fraction of sessions fed through the fault injector")
	seconds := flag.Float64("seconds", 2, "drive: audio seconds per session")
	chunkMs := flag.Int("chunk-ms", 50, "drive: chunk size in milliseconds")
	out := flag.String("o", "-", `drive: report path ("-" for stdout)`)
	flag.Parse()

	log := telemetry.NewLogger(os.Stderr, telemetry.ParseLevel(*logLevel), "kws-serve")

	if *drive != "" {
		runDrive(log, *drive, *sessions, *faultFrac, *seconds, *chunkMs, *seed, *out)
		return
	}

	var eng *deploy.Engine
	if *enginePath != "" {
		f, err := os.Open(*enginePath)
		if err != nil {
			fatal(log, err)
		}
		var rerr error
		eng, rerr = deploy.ReadEngine(f)
		f.Close()
		if rerr != nil {
			fatal(log, fmt.Errorf("loading %s: %w", *enginePath, rerr))
		}
		log.Info("serving packed engine", "path", *enginePath, "policy", eng.Policy.String())
	} else {
		eng = deploy.SyntheticEngine(*seed, *density)
		log.Warn("serving a synthetic engine: random weights, cost profile only",
			"seed", *seed, "density", *density)
	}

	reg := telemetry.Default
	dcfg := stream.DefaultConfig(4000)
	dcfg.Threshold = float32(*threshold)
	if int(eng.Tree.NumClasses) == speechcmd.NumClasses {
		dcfg.IgnoreClass = speechcmd.SilenceClass
		dcfg.IgnoreClass2 = speechcmd.UnknownClass
	}

	var flight *telemetry.FlightRecorder
	if *flightEvents > 0 {
		flight = telemetry.NewFlightRecorder(*flightEvents)
	}
	var traces *telemetry.TraceStore
	if *traceCap > 0 {
		traces = telemetry.NewTraceStore(*traceCap)
	}
	windows, err := parseWindows(*sloWindows)
	if err != nil {
		fatal(log, err)
	}

	srv, err := serve.New(serve.Config{
		Engine:       eng,
		Detector:     dcfg,
		SampleRate:   4000,
		Incremental:  *incremental,
		FeatMean:     float32(*featMean),
		FeatStd:      float32(*featStd),
		MaxSessions:  *maxSessions,
		ChunkQueue:   *chunkQueue,
		IdleTimeout:  *idleTimeout,
		Lanes:        *lanes,
		LaneBatch:    *laneBatch,
		SoftMemLimit: *memLimit,
		Registry:     reg,
		Flight:       flight,
		Traces:       traces,
		SLO: serve.SLOConfig{
			HopP99Target: *sloHopP99,
			Windows:      windows,
			Adaptive:     *sloAdaptive,
		},
		Logger: log,
	})
	if err != nil {
		fatal(log, err)
	}

	front := serve.NewTCPFront(srv, *readTimeout)
	bound, err := front.Start(*addr)
	if err != nil {
		fatal(log, err)
	}
	log.Info("serving sessions", "addr", bound, "max_sessions", *maxSessions)

	var tsrv *telemetry.Server
	if *telemetryAddr != "" {
		tsrv = telemetry.NewServer(reg, nil)
		tsrv.AddCheck("engine", eng.Validate)
		tsrv.AddCheck("serve", srv.Health)
		if flight != nil {
			tsrv.Handle("/debug/flight", flight)
		}
		if traces != nil {
			tsrv.Handle("/debug/trace", traces)
		}
		tsrv.Handle("/slo", srv.SLO())
		taddr, err := tsrv.Start(*telemetryAddr)
		if err != nil {
			fatal(log, err)
		}
		log.Info("telemetry up", "addr", taddr)
	}

	// SIGTERM/SIGINT → graceful drain: finish in-flight hops, close every
	// session with a bye, flush telemetry, exit 0 inside the drain budget.
	// SIGQUIT → dump the flight recorder to stderr and keep serving, the
	// kill -QUIT incident workflow.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT, syscall.SIGQUIT)
	var s os.Signal
	for s = range sig {
		if s == syscall.SIGQUIT {
			log.Info("SIGQUIT: dumping flight recorder to stderr")
			if err := flight.WriteJSON(os.Stderr); err != nil {
				log.Error("flight dump failed", "err", err.Error())
			}
			continue
		}
		break
	}
	log.Info("draining", "signal", s.String(), "budget", drainTimeout.String())

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	st := srv.Drain(ctx)
	front.Shutdown(ctx)
	if tsrv != nil {
		// A fresh, bounded context: in-flight /metrics scrapes finish even
		// when the drain consumed its whole budget.
		tctx, tcancel := context.WithTimeout(context.Background(), 2*time.Second)
		tsrv.Shutdown(tctx)
		tcancel()
	}
	log.Info("drained", "sessions", st.Sessions, "graceful", st.Graceful,
		"forced", st.Forced, "leaked", st.Leaked, "elapsed_ms", st.Elapsed.Milliseconds())
	if st.Leaked > 0 {
		os.Exit(1)
	}
}

// runDrive is the load-generator mode: drive a running daemon over TCP with
// clean and fault-injected sessions, print the report, and exit nonzero if
// the isolation verdict fails.
func runDrive(log *telemetry.Logger, addr string, sessions int, faultFrac, seconds float64, chunkMs int, seed int64, out string) {
	log.Info("driving", "addr", addr, "sessions", sessions, "fault_frac", faultFrac)
	rep := serve.RunLoad(serve.TCPTarget{Addr: addr}, serve.LoadConfig{
		Sessions:      sessions,
		FaultFraction: faultFrac,
		Seconds:       seconds,
		ChunkMs:       chunkMs,
		Seed:          seed,
		Fault: faultinject.StreamConfig{
			PNaNBurst: 0.1, PClip: 0.05, PTruncate: 0.05, PDropChunk: 0.05,
			PSwap: 0.05, PStall: 0.05, PAbort: 0.02,
			StallMin: 5 * time.Millisecond, StallMax: 50 * time.Millisecond,
		},
	})

	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(log, err)
	}
	js = append(js, '\n')
	if out == "-" {
		os.Stdout.Write(js)
	} else if err := os.WriteFile(out, js, 0o644); err != nil {
		fatal(log, err)
	}

	log.Info("drive finished", "sustained", rep.SessionsSustained,
		"clean_lost", rep.CleanSessionsLost, "events", rep.Events,
		"injected_chunks", rep.Injected.Chunks)
	if rep.CleanSessionsLost > 0 || rep.SessionsSustained != rep.Sessions {
		log.Error("isolation verdict FAILED",
			"clean_lost", rep.CleanSessionsLost,
			"sustained", rep.SessionsSustained, "sessions", rep.Sessions)
		os.Exit(1)
	}
}

// parseWindows parses "30s,2m,10m" into durations.
func parseWindows(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		d, err := time.ParseDuration(part)
		if err != nil {
			return nil, fmt.Errorf("bad -slo-windows entry %q: %w", part, err)
		}
		out = append(out, d)
	}
	return out, nil
}

func fatal(log *telemetry.Logger, err error) {
	log.Error(err.Error())
	os.Exit(1)
}
