// Package repro is a from-scratch Go reproduction of "Ternary Hybrid
// Neural-Tree Networks for Highly Constrained IoT Applications"
// (Gope, Dasika & Mattina, SysML 2019).
//
// The implementation lives under internal/: a float32 tensor substrate, an
// explicit-backprop layer library, StrassenNets ternary sum-product
// networks, Bonsai decision trees, the hybrid neural-tree network itself,
// an MFCC front end, a synthetic speech-commands corpus, post-training
// quantization, gradual pruning, op/size accounting, and an experiment
// harness that regenerates every table and figure of the paper. See
// README.md, DESIGN.md and EXPERIMENTS.md.
package repro
