#!/bin/sh
# ci.sh — the repository's verification gauntlet: static analysis, build,
# race-enabled tests, and a short fuzz smoke over the two hostile-input
# parsers (the binary model loader and the WAV chunk walker).
set -eux

go vet ./...
go build ./...
# The -race pass also drives the engine's sharded sparse kernels, the
# InferBatch worker pool, and the frame-major lane batch kernels
# (TestSparseParallelMatchesNaive, TestInferBatchConcurrent,
# TestInferBatchLaneMatchesPerFrame, TestInferBatchLaneConcurrent in
# internal/deploy).
go test -race ./...

# Engine benchmark smoke: one iteration of each packed-engine benchmark, so
# a broken hot path fails CI even when nobody reads BENCH_engine.json.
go test -run='^$' -bench='Engine' -benchtime=1x .

# Disabled-telemetry overhead gate: the single-frame inference hot path must
# stay allocation-free when no observer is attached — the telemetry
# subsystem's "near-zero cost when off" contract.
BENCH_OUT="$(go test -run='^$' -bench='^BenchmarkEngineInfer$' -benchmem -benchtime=100x .)"
echo "$BENCH_OUT"
echo "$BENCH_OUT" | grep 'BenchmarkEngineInfer' | grep -q ' 0 allocs/op'

# Integer-path gauntlet.
# (1) 0-alloc gate for the word-packed paths: both activation policies and
#     the float32 reference simulation must run without allocating, and the
#     single-frame column-lane path must stay allocation-free under every
#     forced row layout (runs / spans / packed2b), not just the cost-model
#     mix the synthetic engine happens to pick.
BENCH_INT="$(go test -run='^$' -bench='^BenchmarkEngineInfer(Mixed|Int8|Float)$' -benchmem -benchtime=100x .)"
echo "$BENCH_INT"
[ "$(echo "$BENCH_INT" | grep -c ' 0 allocs/op')" -eq 3 ]
BENCH_LANE="$(go test -run='^$' -bench='^BenchmarkEngineInferInt8(Runs|Spans|Packed2b)$' -benchmem -benchtime=100x .)"
echo "$BENCH_LANE"
[ "$(echo "$BENCH_LANE" | grep -c ' 0 allocs/op')" -eq 3 ]
# (2) Bit-exactness smoke: InferInt must agree byte-for-byte with the
#     FakeQuant-equivalent float simulation and the int64 scalar oracle on a
#     synthetic paper-shape engine under both policies, and the column-lane
#     row kernels (layout gathers, fused requant rows, depthwise edge-shifted
#     word loads, padded-stride round trip) must match their scalar oracles
#     property-wise.
go test -count=1 -short \
    -run='TestInferIntMatchesFloatSimulation|TestInferIntMatchesNaiveRandomized|TestInferIntZeroAllocs' \
    ./internal/deploy
go test -count=1 \
    -run='TestGatherRowLayoutsProperty|TestFusedRowKernelsMatchTwoPhase|TestDWTapWord|TestChooseLayoutSanity|TestBatchLanePathWithTelemetry|TestPadColsRoundTrip' \
    ./internal/deploy ./internal/tensor
# (3) Serialization round-trip matrix: a PolicyInt8 engine written as .thnt
#     v1, v2 and v3 must read back and score identically (v3 additionally
#     preserving the policy byte and calibration table).
go test -count=1 -run='TestWriteToVersionMatrix|TestV1ArtifactsStillReadable' ./internal/deploy

# Batch-lane gauntlet.
# (1) 0-alloc gate for the frame-major lane batch path: both activation
#     policies with a reused result slice must run without allocating.
BENCH_BATCH="$(go test -run='^$' -bench='^BenchmarkEngineInferBatch(Mixed|Int8)$' -benchmem -benchtime=10x .)"
echo "$BENCH_BATCH"
[ "$(echo "$BENCH_BATCH" | grep -c ' 0 allocs/op')" -eq 2 ]
# (2) Lane exactness/alloc/concurrency properties without the race detector
#     (the alloc-count gate skips under -race, where sync.Pool drops items
#     by design), plus the lane transpose round-trip.
go test -count=1 -short \
    -run='TestCompileSpanRows|TestGatherLaneMatchesScalar|TestInferBatchLaneMatchesPerFrame|TestInferBatchZeroAllocs|TestInferBatchLaneConcurrent|TestLanePack' \
    ./internal/deploy ./internal/tensor
# (3) Mixed single-frame/batch concurrency under the race detector: one
#     goroutine hammering the resident-arena InferInt path while three more
#     drive InferBatch on the same engine — the contract the serving daemon
#     leans on.
go test -race -count=1 -run='TestMixedSingleBatchConcurrent' ./internal/deploy
# (4) Multi-core batch smoke: the worker-scaling sweep must clear the
#     kws-bench v5 gates — single-frame int8 at least 2.5x faster than the
#     float baseline, batch ns/frame at workers=1 within 1.5x of
#     single-frame (the column-lane kernels win at one worker by design),
#     1000 frames of batch output matching the scalar NaiveInt oracle under
#     both policies, the same oracle holding with a telemetry observer
#     attached, 1000 consecutive hops of InferHop matching full-window
#     InferInt byte-for-byte, and the incremental streaming pipeline
#     (featurise + infer per hop) at least 2x faster than full-window
#     recompute — kws-bench exits nonzero on any failure.
BDIR="$(mktemp -d)"
go build -o "$BDIR/kws-bench" ./cmd/kws-bench
"$BDIR/kws-bench" -workers 1,2,4 -reps 3 -o "$BDIR/bench-engine.json"
grep -q '"batch_parity_1000_frames": true' "$BDIR/bench-engine.json"
grep -q '"telemetry_parity_1000_frames": true' "$BDIR/bench-engine.json"
grep -q '"hop_parity_1000_hops": true' "$BDIR/bench-engine.json"
rm -rf "$BDIR"

# Incremental-hop gauntlet (temporal caching across overlapping windows).
# (1) 0-alloc gate for the per-hop entry points: a warm hop under each
#     policy (float reference, mixed, int8) must run without allocating —
#     the steady-state contract the streaming pipeline leans on.
BENCH_HOP="$(go test -run='^$' -bench='^BenchmarkEngineInferHop(Float|Mixed|Int8)$' -benchmem -benchtime=100x .)"
echo "$BENCH_HOP"
[ "$(echo "$BENCH_HOP" | grep -c ' 0 allocs/op')" -eq 3 ]
# (2) Bit-exactness smoke: InferHop must agree byte-for-byte with the
#     full-window path across shifts, invalidations, ragged arrivals, and
#     both activation policies.
go test -count=1 -run='TestInferHop' ./internal/deploy
# (3) Gap/reset parity under the race detector: an incremental detector
#     interleaving gap concealment and resets must stay event-identical to
#     a full-window detector while another goroutine polls its stats, the
#     hop snap rule must hold at every sample rate, and the cache ledger
#     must account every hop as a hit, miss, or invalidation.
go test -race -count=1 \
    -run='TestIncrementalGapResetParity|TestIncrementalCacheAccounting|TestIncrementalHopSnapping' \
    ./internal/stream
# (4) End-to-end incremental serving: a session opened under
#     Config.Incremental must deliver exactly the events of a standalone
#     incremental detector fed the same chunks and gap.
go test -count=1 -run='TestIncrementalServing' ./internal/serve

# Observability gauntlet (unit layer).
# (1) Prometheus text-exposition golden file: the rendered /metrics?format=prom
#     output for a deterministic registry must match testdata byte-for-byte
#     (regenerate with `go test ./internal/telemetry -run Golden -update`).
go test -count=1 -run='TestWritePrometheusGolden|TestWritePrometheusFormat' ./internal/telemetry
# (2) Flight-recorder and hop-trace concurrency properties under the race
#     detector: concurrent writers vs dumpers, wraparound ordering, torn-entry
#     invariants, and the histogram snapshot-consistency hammer.
go test -race -count=1 \
    -run='TestFlightRecorder|TestTraceStore|TestHistogramSnapshotConsistency' \
    ./internal/telemetry
# (3) Hot-path cost gates: recording a flight event and opening/committing a
#     hop trace must both run allocation-free — the flight recorder sits on
#     the session close/breaker/shed paths and the tracer on every chunk.
BENCH_OBS="$(go test -run='^$' -bench='^Benchmark(FlightRecord|TraceBeginCommit)$' -benchmem -benchtime=100x ./internal/telemetry)"
echo "$BENCH_OBS"
[ "$(echo "$BENCH_OBS" | grep -c ' 0 allocs/op')" -eq 2 ]

# Telemetry-server smoke: a live kws-stream must answer /healthz with an ok
# status and expose non-empty stream counters on /metrics while it holds.
TDIR="$(mktemp -d)"
go build -o "$TDIR/kws-stream" ./cmd/kws-stream
"$TDIR/kws-stream" -samples 4 -epochs 1 -script '_,yes,_' \
    -telemetry-addr 127.0.0.1:18173 -hold 20s &
STREAM_PID=$!
HEALTH=""
for _ in $(seq 1 120); do
    if HEALTH="$(curl -sf http://127.0.0.1:18173/healthz)"; then break; fi
    sleep 0.5
done
echo "$HEALTH" | grep -q '"status": "ok"'
# The stream may still be mid-flight at the first scrape: poll until the
# hop counter moves, then assert on a final snapshot.
for _ in $(seq 1 60); do
    curl -sf http://127.0.0.1:18173/metrics > "$TDIR/metrics.txt" || true
    if grep -q '^stream\.hops [1-9]' "$TDIR/metrics.txt"; then break; fi
    sleep 0.5
done
grep -q '^stream\.hops [1-9]' "$TDIR/metrics.txt"
grep -q '^stream\.samples [1-9]' "$TDIR/metrics.txt"
curl -sf http://127.0.0.1:18173/debug/vars > /dev/null
kill "$STREAM_PID" 2>/dev/null || true
wait "$STREAM_PID" 2>/dev/null || true
rm -rf "$TDIR"

# Parallel-training smoke under the race detector: one epoch of the data-
# parallel trainer (-workers 2) driven twice through the same feature cache,
# proving both the cold write and the warm reload paths end to end.
CACHE="$(mktemp -d)/feat.thfc"
go run -race ./cmd/kws-train -model st-hybrid -samples 4 -width 0.1 \
    -epochs 1 -workers 2 -cache "$CACHE"
test -f "$CACHE"
go run -race ./cmd/kws-train -model st-hybrid -samples 4 -width 0.1 \
    -epochs 1 -workers 2 -cache "$CACHE"
rm -rf "$(dirname "$CACHE")"

# Serving gauntlet: boot the multi-session daemon under the race detector,
# wait for /healthz, then drive 100 wire sessions — ~30% of them through the
# fault injector (NaN bursts, truncation, drops, reorders, stalls, aborts).
# The drive exits nonzero if any clean session is lost or any session fails
# to sustain, so fault leakage across sessions fails CI here. Afterwards the
# daemon must still report healthy, and SIGTERM must drain to exit 0 within
# its budget (a leaked session exits 1 and fails the `wait`).
SDIR="$(mktemp -d)"
go build -race -o "$SDIR/kws-serve" ./cmd/kws-serve
"$SDIR/kws-serve" -addr 127.0.0.1:19470 -telemetry-addr 127.0.0.1:19471 \
    -idle-timeout 10s -read-timeout 5s -drain-timeout 15s &
SERVE_PID=$!
for _ in $(seq 1 120); do
    if curl -sf http://127.0.0.1:19471/healthz > /dev/null; then break; fi
    sleep 0.5
done
curl -sf http://127.0.0.1:19471/healthz | grep -q '"status": "ok"'
"$SDIR/kws-serve" -drive 127.0.0.1:19470 -sessions 100 -fault-frac 0.3 \
    -seconds 1 -o "$SDIR/drive.json"
grep -q '"clean_sessions_lost": 0' "$SDIR/drive.json"
curl -sf http://127.0.0.1:19471/healthz | grep -q '"status": "ok"'
curl -sf http://127.0.0.1:19471/metrics > "$SDIR/serve-metrics.txt"
grep -q '^serve\.sessions\.opened [1-9]' "$SDIR/serve-metrics.txt"
grep -q '^serve\.chunks [1-9]' "$SDIR/serve-metrics.txt"
# Observability endpoints on the live daemon: Prometheus exposition must
# carry the serve counters and the hop-latency histogram, /slo must report
# all three objectives with the budget intact after a clean drive, and the
# flight recorder must hold session open/close events from the drive.
curl -sf 'http://127.0.0.1:19471/metrics?format=prom' > "$SDIR/serve-prom.txt"
grep -q '^serve_sessions_opened_total [1-9]' "$SDIR/serve-prom.txt"
grep -q '^serve_hop_e2e_ns_bucket' "$SDIR/serve-prom.txt"
grep -q '^serve_sessions_closed_client_close_total [1-9]' "$SDIR/serve-prom.txt"
curl -sf http://127.0.0.1:19471/slo > "$SDIR/serve-slo.txt"
grep -q '"name": "hop-p99"' "$SDIR/serve-slo.txt"
grep -q '"name": "clean-close"' "$SDIR/serve-slo.txt"
grep -q '"name": "event-delivery"' "$SDIR/serve-slo.txt"
curl -sf http://127.0.0.1:19471/debug/flight > "$SDIR/serve-flight.json"
grep -q '"kind": "session.open"' "$SDIR/serve-flight.json"
grep -q '"kind": "session.close"' "$SDIR/serve-flight.json"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
rm -rf "$SDIR"

# Fuzz smoke: 10 s per hostile-input parser. Seeds alone run in `go test`;
# this exercises the mutation engine against fresh corpus entries.
go test -run='^$' -fuzz=FuzzReadEngine -fuzztime=10s ./internal/deploy
go test -run='^$' -fuzz=FuzzReadWAV -fuzztime=10s ./internal/audio
