#!/bin/sh
# ci.sh — the repository's verification gauntlet: static analysis, build,
# race-enabled tests, and a short fuzz smoke over the two hostile-input
# parsers (the binary model loader and the WAV chunk walker).
set -eux

go vet ./...
go build ./...
# The -race pass also drives the engine's sharded sparse kernels and the
# InferBatch worker pool (TestSparseParallelMatchesNaive,
# TestInferBatchConcurrent in internal/deploy).
go test -race ./...

# Engine benchmark smoke: one iteration of each packed-engine benchmark, so
# a broken hot path fails CI even when nobody reads BENCH_engine.json.
go test -run='^$' -bench='Engine' -benchtime=1x .

# Parallel-training smoke under the race detector: one epoch of the data-
# parallel trainer (-workers 2) driven twice through the same feature cache,
# proving both the cold write and the warm reload paths end to end.
CACHE="$(mktemp -d)/feat.thfc"
go run -race ./cmd/kws-train -model st-hybrid -samples 4 -width 0.1 \
    -epochs 1 -workers 2 -cache "$CACHE"
test -f "$CACHE"
go run -race ./cmd/kws-train -model st-hybrid -samples 4 -width 0.1 \
    -epochs 1 -workers 2 -cache "$CACHE"
rm -rf "$(dirname "$CACHE")"

# Fuzz smoke: 10 s per hostile-input parser. Seeds alone run in `go test`;
# this exercises the mutation engine against fresh corpus entries.
go test -run='^$' -fuzz=FuzzReadEngine -fuzztime=10s ./internal/deploy
go test -run='^$' -fuzz=FuzzReadWAV -fuzztime=10s ./internal/audio
