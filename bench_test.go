// Benchmark harness: one benchmark per paper table and figure, plus kernel
// micro-benchmarks. Table benchmarks run the full experiment generator
// (training included) at a reduced scale; cost columns inside them are
// computed at paper scale regardless, so each run re-derives the paper's
// muls/adds/ops/model-size numbers. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/deploy"
	"repro/internal/dsp"
	"repro/internal/exp"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/speechcmd"
	"repro/internal/strassen"
	"repro/internal/tensor"
)

// benchScale keeps full-table benchmarks in the tens of seconds.
var benchScale = exp.Scale{WidthMult: 0.12, SamplesPerCls: 16, Epochs: 6, Seed: 1}

func benchTable(b *testing.B, n int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := exp.NewContext(benchScale, nil)
		tab, err := exp.Generate(c, n)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchTable(b, 1) }
func BenchmarkTable2(b *testing.B) { benchTable(b, 2) }
func BenchmarkTable3(b *testing.B) { benchTable(b, 3) }
func BenchmarkTable4(b *testing.B) { benchTable(b, 4) }
func BenchmarkTable5(b *testing.B) { benchTable(b, 5) }
func BenchmarkTable6(b *testing.B) { benchTable(b, 6) }
func BenchmarkTable7(b *testing.B) { benchTable(b, 7) }
func BenchmarkTable8(b *testing.B) { benchTable(b, 8) }

func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := exp.NewContext(benchScale, nil)
		if tabs := exp.Ablations(c); len(tabs) != 3 {
			b.Fatal("expected 3 ablation tables")
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := exp.Figure1(); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// --- kernel micro-benchmarks ---

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(128, 128).Rand(rng, 1)
	y := tensor.New(128, 128).Rand(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(x, y)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	img := tensor.New(64, 25, 5).Rand(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Im2Col(img, 3, 3, 1, 1, 1)
	}
}

func BenchmarkMFCC(b *testing.B) {
	m := dsp.NewMFCC(dsp.DefaultMFCCConfig(4000))
	wave := make([]float64, 4000)
	rng := rand.New(rand.NewSource(3))
	for i := range wave {
		wave[i] = rng.NormFloat64() * 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Compute(wave)
	}
}

func BenchmarkCorpusSample(b *testing.B) {
	cfg := speechcmd.DefaultConfig()
	rng := rand.New(rand.NewSource(4))
	m := dsp.NewMFCC(dsp.DefaultMFCCConfig(cfg.SampleRate))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Compute(speechcmd.SynthesizeUtterance("yes", cfg, rng))
	}
}

// inference benchmarks at paper scale: the latency ordering should mirror
// the paper's op counts (ST-HybridNet < DS-CNN < ST-DS-CNN).

func benchInference(b *testing.B, m nn.Layer) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.New(1, models.InputDim).Rand(rng, 1)
	m.Forward(x, false) // warm up internal buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x, false)
	}
}

func BenchmarkInferenceDSCNN(b *testing.B) {
	benchInference(b, models.NewDSCNN(12, 1, rand.New(rand.NewSource(6))))
}

func BenchmarkInferenceSTDSCNN(b *testing.B) {
	m := models.NewSTDSCNN(12, 1, 0.75, rand.New(rand.NewSource(6)))
	strassen.SetModeAll(m, strassen.Fixed)
	benchInference(b, m)
}

func BenchmarkInferenceHybrid(b *testing.B) {
	cfg := core.DefaultConfig(12)
	cfg.Strassen = false
	benchInference(b, core.New(cfg, rand.New(rand.NewSource(6))))
}

func BenchmarkInferenceSTHybrid(b *testing.B) {
	h := core.New(core.DefaultConfig(12), rand.New(rand.NewSource(6)))
	strassen.SetModeAll(h, strassen.Fixed)
	benchInference(b, h)
}

// --- packed engine benchmarks ---
//
// The deployment engine at the exact paper shape (49×10 MFCC → 64-ch
// ST-HybridNet → depth-2 Bonsai, 12 classes). BenchmarkEngineInfer must
// report 0 allocs/op — that regression gate is also pinned by
// TestEngineInferZeroAllocs. cmd/kws-bench runs the same three paths and
// persists the numbers to BENCH_engine.json.

func benchEngineInput(e *deploy.Engine, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float32, e.Frames*e.Coeffs)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	return x
}

func BenchmarkEngineInferNaive(b *testing.B) {
	e := deploy.SyntheticEngine(9, 0.35)
	e.Naive = true
	x := benchEngineInput(e, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Infer(x)
	}
}

func BenchmarkEngineInfer(b *testing.B) {
	e := deploy.SyntheticEngine(9, 0.35)
	x := benchEngineInput(e, 10)
	e.Infer(x) // warm up: kernel compile + arena build
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Infer(x)
	}
}

// BenchmarkEngineInferFloat is the float32 reference simulation — the
// baseline the integer policies are measured against in kws-bench.
func BenchmarkEngineInferFloat(b *testing.B) {
	e := deploy.SyntheticEngine(9, 0.35)
	x := benchEngineInput(e, 10)
	e.InferFloat(x) // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.InferFloat(x)
	}
}

// BenchmarkEngineInferMixed pins the word-packed integer path at the
// paper's mixed 8/16-bit activation policy (the Infer default).
func BenchmarkEngineInferMixed(b *testing.B) {
	e := deploy.SyntheticEngine(9, 0.35)
	e.Policy = deploy.PolicyMixed
	x := benchEngineInput(e, 10)
	e.InferInt(x) // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.InferInt(x)
	}
}

// BenchmarkEngineInferInt8 pins the fully-8-bit policy: both conv stages
// run the word-packed byte-lane kernels.
func BenchmarkEngineInferInt8(b *testing.B) {
	e := deploy.SyntheticEngine(9, 0.35)
	e.Policy = deploy.PolicyInt8
	x := benchEngineInput(e, 10)
	e.InferInt(x) // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.InferInt(x)
	}
}

// benchEngineHop drives the incremental hop path at the default 250 ms hop
// (12 stride-aligned frames of the 49-frame window) over a long strip of
// overlapping windows — the steady-state streaming-session shape. Must
// report 0 allocs/op (pinned by TestInferHopZeroAllocs and gated in ci.sh);
// kws-bench gates its speedup over the full-window single-frame path.
func benchEngineHop(b *testing.B, pol deploy.Policy, float bool) {
	const hop = 12
	const hops = 512
	e := deploy.SyntheticEngine(9, 0.35)
	e.Policy = pol
	rng := rand.New(rand.NewSource(10))
	strip := make([]float32, (int(e.Frames)+hop*hops)*int(e.Coeffs))
	for i := range strip {
		strip[i] = float32(rng.NormFloat64())
	}
	window := func(i int) []float32 {
		return strip[i*hop*int(e.Coeffs):][:int(e.Frames)*int(e.Coeffs)]
	}
	infer := e.InferHopInt
	if float {
		infer = e.InferHopFloat
	}
	hs := e.NewHopState()
	defer hs.Release()
	infer(hs, window(0), int(e.Frames)) // warm up: cold full recompute
	i := 1
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if i >= hops {
			// The strip loops: re-seed the cache outside the timed cost of a
			// steady-state hop as rarely as the strip allows (1/511 hops).
			i = 1
			infer(hs, window(0), int(e.Frames))
		}
		infer(hs, window(i), hop)
		i++
	}
}

func BenchmarkEngineInferHopFloat(b *testing.B) { benchEngineHop(b, deploy.PolicyMixed, true) }
func BenchmarkEngineInferHopMixed(b *testing.B) { benchEngineHop(b, deploy.PolicyMixed, false) }
func BenchmarkEngineInferHopInt8(b *testing.B)  { benchEngineHop(b, deploy.PolicyInt8, false) }

func BenchmarkEngineInferBatch(b *testing.B) {
	const batch = 64
	e := deploy.SyntheticEngine(9, 0.35)
	xs := make([][]float32, batch)
	for i := range xs {
		xs[i] = benchEngineInput(e, int64(11+i))
	}
	e.InferBatch(xs[:1]) // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range e.InferBatch(xs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// benchEngineBatch drives the frame-major lane batch path at one policy
// with a reused result slice (InferBatchInto), the steady-state serving
// shape: it must report 0 allocs/op — pinned by TestInferBatchZeroAllocs
// and gated in ci.sh — and its ns/frame must beat the single-frame ns/op
// above (gated by kws-bench).
func benchEngineBatch(b *testing.B, pol deploy.Policy) {
	const batch = 64
	e := deploy.SyntheticEngine(9, 0.35)
	e.Policy = pol
	xs := make([][]float32, batch)
	for i := range xs {
		xs[i] = benchEngineInput(e, int64(11+i))
	}
	dst := e.InferBatchInto(nil, xs) // warm up: compile, lane arena, result storage
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = e.InferBatchInto(dst, xs)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/frame")
	for _, r := range dst {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

func BenchmarkEngineInferBatchMixed(b *testing.B) { benchEngineBatch(b, deploy.PolicyMixed) }
func BenchmarkEngineInferBatchInt8(b *testing.B)  { benchEngineBatch(b, deploy.PolicyInt8) }

func BenchmarkTrainStepSTHybrid(b *testing.B) {
	cfg := core.DefaultConfig(12)
	cfg.WidthMult = 0.25
	h := core.New(cfg, rand.New(rand.NewSource(7)))
	rng := rand.New(rand.NewSource(8))
	x := tensor.New(20, models.InputDim).Rand(rng, 1)
	g := tensor.New(20, 12).Rand(rng, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.ZeroGrads(h)
		out := h.Forward(x, true)
		_ = out
		h.Backward(g)
	}
}
