// Bonsai example: the expressiveness limitation that motivates the hybrid.
//
// This reproduces Section 2.2 of the paper in miniature: a standalone Bonsai
// tree — even a reasonably large one — saturates well below a convolutional
// feature extractor on the keyword-spotting task, because its single linear
// projection cannot absorb the timing jitter in the speech input. A small
// DS-CNN trained with the same budget pulls far ahead.
//
//	go run ./examples/bonsai
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bonsai"
	"repro/internal/models"
	"repro/internal/speechcmd"
	"repro/internal/train"
)

func main() {
	dsCfg := speechcmd.DefaultConfig()
	dsCfg.SamplesPerCls = 40
	ds := speechcmd.Generate(dsCfg)
	x, y := speechcmd.Batch(ds.Train, 0, len(ds.Train))
	tx, ty := speechcmd.Batch(ds.Test, 0, len(ds.Test))

	fmt.Println("standalone Bonsai trees vs a small DS-CNN on synthetic KWS")
	fmt.Println()
	fmt.Printf("  %-24s %10s\n", "model", "test acc")

	for _, cfg := range []struct{ projDim, depth int }{{16, 2}, {32, 2}, {32, 4}} {
		rng := rand.New(rand.NewSource(3))
		tree := bonsai.New("bonsai", bonsai.Config{
			Depth:      cfg.depth,
			InputDim:   models.InputDim,
			ProjDim:    cfg.projDim,
			NumClasses: speechcmd.NumClasses,
			SigmaPred:  1,
			SigmaInd:   1,
			Project:    true,
		}, bonsai.DenseFactory(rng), rng)
		tc := train.Config{
			Epochs:    40, // Bonsai gets a longer budget, as in the paper
			BatchSize: 20,
			Schedule:  train.StepSchedule{Base: 0.01, Every: 20, Factor: 0.3},
			Loss:      train.MultiClassHinge,
			Seed:      1,
			OnEpoch: func(epoch int, loss float64) {
				tree.SetSigmaInd(1 + 7*float32(epoch)/40)
			},
		}
		train.Run(tree, x, y, tc)
		acc := train.Accuracy(tree, tx, ty, 64)
		fmt.Printf("  Bonsai (D̂=%d, T=%d)      %9.2f%%\n", cfg.projDim, cfg.depth, 100*acc)
	}

	rng := rand.New(rand.NewSource(4))
	cnn := models.NewDSCNN(speechcmd.NumClasses, 0.2, rng)
	fmt.Fprintln(os.Stderr, "training DS-CNN...")
	train.Run(cnn, x, y, train.Config{
		Epochs:    25,
		BatchSize: 20,
		Schedule:  train.StepSchedule{Base: 0.01, Every: 13, Factor: 0.3},
		Loss:      train.CrossEntropy,
		Seed:      1,
	})
	fmt.Printf("  %-24s %9.2f%%\n", "DS-CNN (small)", 100*train.Accuracy(cnn, tx, ty, 64))
	fmt.Println()
	fmt.Println("the tree saturates; the convolutional model does not — the gap the")
	fmt.Println("paper's hybrid closes by letting convolutions feed the tree")
}
