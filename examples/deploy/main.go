// Deploy example: post-training quantization and ternary packing.
//
// This walks the paper's deployment path (Section 4, Table 6): train an
// ST-HybridNet, quantise the remaining full-precision weights and the
// activations without retraining, compare accuracy and memory footprint
// under the fully-8-bit and mixed 8/16-bit policies, and finally pack the
// fixed ternary matrices at 2 bits per weight into a binary blob — the form
// a microcontroller runtime would ship.
//
//	go run ./examples/deploy
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/opcount"
	"repro/internal/quant"
	"repro/internal/speechcmd"
	"repro/internal/strassen"
	"repro/internal/train"
)

func main() {
	// Train a reduced-width ST-HybridNet through the staged schedule.
	dsCfg := speechcmd.DefaultConfig()
	dsCfg.SamplesPerCls = 40
	ds := speechcmd.Generate(dsCfg)
	x, y := speechcmd.Batch(ds.Train, 0, len(ds.Train))
	tx, ty := speechcmd.Batch(ds.Test, 0, len(ds.Test))

	cfg := core.DefaultConfig(speechcmd.NumClasses)
	cfg.WidthMult = 0.2
	h := core.New(cfg, rand.New(rand.NewSource(1)))
	const perStage = 12
	base := train.Config{
		BatchSize: 20,
		Schedule:  train.StepSchedule{Base: 0.01, Every: 7, Factor: 0.3},
		Loss:      train.MultiClassHinge,
		Seed:      1,
		Log:       os.Stderr,
		OnEpoch: func(epoch int, loss float64) {
			h.AnnealSigma(float64(epoch)/float64(3*perStage), 8)
		},
	}
	train.RunStaged(h, x, y, train.StagedConfig{
		Base: base, WarmupEpochs: perStage, QuantEpochs: perStage, FixedEpochs: perStage,
	})
	fpAcc := train.Accuracy(h, tx, ty, 64)
	fmt.Printf("\nfull-precision test accuracy: %.2f%%\n\n", 100*fpAcc)

	// Post-training quantization, no retraining — the paper's Table 6.
	restore := quant.QuantizeWeights(h, 16) // â and biases to 16-bit
	defer restore()
	for _, pol := range []quant.Policy{quant.Act8, quant.ActMixed816} {
		sim := quant.Calibrate(h, x, pol)
		acc := train.Accuracy(sim, tx, ty, 64)
		fmt.Printf("%-32s accuracy %.2f%% (drop %+.2f points)\n",
			pol.String()+":", 100*acc, 100*(acc-fpAcc))
	}

	// Memory accounting at paper scale.
	full := opcount.Count(core.New(core.DefaultConfig(speechcmd.NumClasses),
		rand.New(rand.NewSource(1))), models.InputDim)
	fmt.Printf("\nmemory at paper scale (model + max live activations):\n")
	fmt.Printf("  model size (2-bit ternary + 16-bit â/bias): %.2fKB\n", full.ModelSizeBytes(2)/1024)
	fmt.Printf("  footprint, fully 8-bit activations:         %.2fKB (paper: 26.17KB)\n",
		full.MemoryFootprintBytes(2, 1, 1)/1024)
	fmt.Printf("  footprint, mixed 8/16-bit activations:      %.2fKB (paper: 41.8KB)\n",
		full.MemoryFootprintBytes(2, 1, 2)/1024)

	// Pack the ternary matrices 2 bits per weight.
	blob := packTernary(h)
	const out = "st_hybrid_ternary.bin"
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\npacked %d ternary weights into %s (%d bytes, 2 bits/weight)\n",
		len(blob)*4, out, len(blob))
}

// packTernary packs every ternary matrix of the model at 2 bits per entry:
// 00 = 0, 01 = +1, 10 = -1, four entries per byte.
func packTernary(model *core.Hybrid) []byte {
	var vals []int8
	for _, t := range strassen.CollectTernary(model) {
		vals = append(vals, t.T...)
	}
	blob := make([]byte, (len(vals)+3)/4)
	for i, v := range vals {
		var code byte
		switch v {
		case 1:
			code = 0b01
		case -1:
			code = 0b10
		}
		blob[i/4] |= code << uint((i%4)*2)
	}
	return blob
}
