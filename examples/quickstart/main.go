// Quickstart: build, train and evaluate a small ST-HybridNet end to end.
//
// This walks the paper's whole pipeline in under a minute: synthesise the
// speech-commands corpus, build the ternary hybrid neural-tree network,
// train it through the three-stage StrassenNets schedule (full precision →
// quantising → fixed ternary), and report accuracy plus the op/size profile.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/opcount"
	"repro/internal/speechcmd"
	"repro/internal/train"
)

func main() {
	// 1. Data: a synthetic stand-in for Google Speech Commands (49×10 MFCC
	// images, 12 classes, noise + timing-jitter augmentation).
	dsCfg := speechcmd.DefaultConfig()
	dsCfg.SamplesPerCls = 40
	ds := speechcmd.Generate(dsCfg)
	x, y := speechcmd.Batch(ds.Train, 0, len(ds.Train))
	tx, ty := speechcmd.Batch(ds.Test, 0, len(ds.Test))
	fmt.Printf("corpus: %d train / %d test samples, %d classes\n",
		len(ds.Train), len(ds.Test), speechcmd.NumClasses)

	// 2. Model: the paper's ST-HybridNet at reduced width for speed —
	// 3 strassenified conv layers + a depth-2 Bonsai tree.
	cfg := core.DefaultConfig(speechcmd.NumClasses)
	cfg.WidthMult = 0.2
	h := core.New(cfg, rand.New(rand.NewSource(1)))

	// 3. Train through the staged schedule with hinge loss and Bonsai
	// σ-annealing, exactly as the paper describes.
	const perStage = 14
	base := train.Config{
		BatchSize: 20,
		Schedule:  train.StepSchedule{Base: 0.01, Every: 8, Factor: 0.3},
		Loss:      train.MultiClassHinge,
		Seed:      1,
		Log:       os.Stderr,
		OnEpoch: func(epoch int, loss float64) {
			h.AnnealSigma(float64(epoch)/float64(3*perStage), 8)
		},
	}
	train.RunStaged(h, x, y, train.StagedConfig{
		Base: base, WarmupEpochs: perStage, QuantEpochs: perStage, FixedEpochs: perStage,
	})

	// 4. Evaluate.
	fmt.Printf("\ntest accuracy: %.2f%%\n", 100*train.Accuracy(h, tx, ty, 64))

	// 5. Cost profile at the paper's full scale.
	full := opcount.Count(core.New(core.DefaultConfig(speechcmd.NumClasses),
		rand.New(rand.NewSource(1))), models.InputDim)
	fmt.Printf("\nST-HybridNet at paper scale:\n")
	fmt.Printf("  multiplications: %.2fM (paper: 0.03M)\n", float64(full.Total.Muls)/1e6)
	fmt.Printf("  additions:       %.2fM (paper: 2.37M)\n", float64(full.Total.Adds)/1e6)
	fmt.Printf("  total ops:       %.2fM (paper: 2.4M, DS-CNN baseline: 2.7M)\n", float64(full.Total.Ops())/1e6)
	fmt.Printf("  model size:      %.2fKB (paper: 14.99KB, DS-CNN baseline: 22.07KB)\n",
		full.ModelSizeBytes(4)/1024)
}
