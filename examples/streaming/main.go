// Streaming example: always-on keyword spotting over a continuous audio
// stream — the paper's motivating IoT deployment.
//
// A small DS-CNN is trained on the synthetic corpus, wrapped in the
// streaming detector (sliding one-second window, posterior smoothing,
// refractory suppression), and fed a 10-second stream with keywords
// embedded among silence. Detections print as they fire.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/internal/models"
	"repro/internal/speechcmd"
	"repro/internal/stream"
	"repro/internal/train"
)

func main() {
	cfg := speechcmd.DefaultConfig()
	cfg.SamplesPerCls = 40
	ds := speechcmd.Generate(cfg)
	x, y := speechcmd.Batch(ds.Train, 0, len(ds.Train))

	fmt.Fprintln(os.Stderr, "training a small DS-CNN classifier...")
	rng := rand.New(rand.NewSource(1))
	m := models.NewDSCNN(speechcmd.NumClasses, 0.2, rng)
	train.Run(m, x, y, train.Config{
		Epochs:    18,
		BatchSize: 20,
		Schedule:  train.StepSchedule{Base: 0.01, Every: 10, Factor: 0.3},
		Loss:      train.CrossEntropy,
		Seed:      1,
	})
	tx, ty := speechcmd.Batch(ds.Test, 0, len(ds.Test))
	fmt.Fprintf(os.Stderr, "test accuracy: %.2f%%\n\n", 100*train.Accuracy(m, tx, ty, 64))

	// Assemble a 10-second stream: keywords at 2s, 5s and 8s.
	script := []struct {
		word string
		at   string
	}{
		{"", "0s"}, {"", "1s"}, {"yes", "2s"}, {"", "3s"}, {"", "4s"},
		{"go", "5s"}, {"", "6s"}, {"", "7s"}, {"left", "8s"}, {"", "9s"},
	}
	wrng := rand.New(rand.NewSource(7))
	var wave []float64
	fmt.Println("stream script:")
	for _, s := range script {
		label := s.word
		if label == "" {
			label = "(silence)"
		}
		fmt.Printf("  %s: %s\n", s.at, label)
		wave = append(wave, speechcmd.SynthesizeUtterance(s.word, cfg, wrng)...)
	}

	dcfg := stream.DefaultConfig(cfg.SampleRate)
	dcfg.IgnoreClass = speechcmd.SilenceClass
	dcfg.IgnoreClass2 = speechcmd.UnknownClass
	dcfg.Threshold = 0.5
	det := stream.NewDetector(dcfg, &stream.ModelClassifier{Model: m, Classes: speechcmd.NumClasses}, ds.FeatMean, ds.FeatStd)

	fmt.Println("\ndetections:")
	names := speechcmd.ClassNames()
	// Feed the stream in 100 ms chunks, as an audio driver would.
	chunk := cfg.SampleRate / 10
	for lo := 0; lo < len(wave); lo += chunk {
		hi := lo + chunk
		if hi > len(wave) {
			hi = len(wave)
		}
		for _, ev := range det.Push(wave[lo:hi]) {
			fmt.Printf("  %5.2fs  %-8s (posterior %.2f)\n",
				float64(ev.Sample)/float64(cfg.SampleRate), names[ev.Class], ev.Score)
		}
	}
}
