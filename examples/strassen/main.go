// Strassen example: from exact Strassen multiplication to learned
// approximate SPNs.
//
// Part 1 evaluates the classic ternary sum-product network that multiplies
// two 2×2 matrices with 7 multiplications — equation (1) of the paper —
// and verifies it against the naive product.
//
// Part 2 trains strassenified dense layers with different hidden widths r to
// approximate a fixed linear map, reproducing in miniature the paper's
// Table 1 trade-off: more hidden units → better fidelity but more additions.
//
//	go run ./examples/strassen
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/strassen"
	"repro/internal/tensor"
)

func main() {
	exactStrassen()
	learnedSPN()
}

func exactStrassen() {
	fmt.Println("Part 1 — exact Strassen 2×2 multiplication as a ternary SPN")
	wa, wb, wc := strassen.Strassen2x2()
	rng := rand.New(rand.NewSource(1))
	a := tensor.New(2, 2).Rand(rng, 1)
	b := tensor.New(2, 2).Rand(rng, 1)
	spn := strassen.SPN(wa, wb, wc, a.Data, b.Data)
	naive := tensor.MatMul(a, b)
	fmt.Printf("  A = %v\n  B = %v\n", a.Data, b.Data)
	fmt.Printf("  naive A·B (8 muls):   %v\n", naive.Data)
	fmt.Printf("  Strassen SPN (7 muls): %v\n", spn)
	var maxErr float64
	for i := range spn {
		if d := float64(spn[i] - naive.Data[i]); d*d > maxErr*maxErr {
			maxErr = d
		}
	}
	fmt.Printf("  max abs error: %.2e\n\n", maxErr)
}

func learnedSPN() {
	fmt.Println("Part 2 — learned approximate SPNs: fidelity vs hidden width r")
	fmt.Println("  approximating a fixed 8→8 linear map with ternary Wb, Wc and full-precision â")
	fmt.Println()
	rng := rand.New(rand.NewSource(2))
	const in, out = 8, 8
	target := tensor.New(out, in).Rand(rng, 1)

	// Training set: random inputs with exact targets.
	const n = 256
	xs := tensor.New(n, in).Rand(rng, 1)
	ys := tensor.MatMulT2(xs, target)

	fmt.Printf("  %4s  %12s  %8s  %8s\n", "r", "final MSE", "muls", "adds")
	for _, r := range []int{4, 8, 12, 16, 24} {
		d := strassen.NewDense(fmt.Sprintf("spn-r%d", r), in, out, r, rng)
		mse := trainSPN(d, xs, ys)
		adds := 0
		for _, t := range d.TernaryMatrices() {
			adds += t.NNZ()
		}
		fmt.Printf("  %4d  %12.5f  %8d  %8d\n", r, mse, r, adds)
	}
	fmt.Println("\n  (exactly the paper's trade-off: wider SPN hidden layers recover")
	fmt.Println("   accuracy but the ternary matrices contribute more additions)")
}

// trainSPN runs the full three-stage schedule on one strassenified dense
// layer and returns the final mean squared error.
func trainSPN(d *strassen.Dense, xs, ys *tensor.Tensor) float64 {
	n := xs.Dim(0)
	step := func(lr float32, epochs int) {
		for e := 0; e < epochs; e++ {
			nn.ZeroGrads(d)
			out := d.Forward(xs, true)
			g := out.Clone()
			g.Sub(ys).Scale(2 / float32(n))
			d.Backward(g)
			for _, p := range d.Params() {
				if p.Frozen {
					continue
				}
				p.W.AddScaled(p.G, -lr)
			}
		}
	}
	step(0.05, 150)
	d.SetMode(strassen.Quantizing)
	step(0.02, 250)
	d.SetMode(strassen.Fixed)
	step(0.02, 150)

	out := d.Forward(xs, false)
	var mse float64
	for i := range out.Data {
		diff := float64(out.Data[i] - ys.Data[i])
		mse += diff * diff
	}
	return mse / float64(len(out.Data))
}
