// Forced-layout benchmarks: the single-frame int8 path with every standard
// conv row pinned to one compiled form, isolating the per-layout kernels the
// cost model (internal/deploy cost.go) arbitrates between. kws-bench v4
// reports the same split as speedup_int8_vs_float per layout.
package repro_test

import (
	"testing"

	"repro/internal/deploy"
)

func benchEngineInt8Layout(b *testing.B, k deploy.LayoutKind) {
	e := deploy.SyntheticEngine(9, 0.35)
	e.Policy = deploy.PolicyInt8
	x := benchEngineInput(e, 10)
	e.InferInt(x) // warm up: compile + arena
	e.SetForceLayout(k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.InferInt(x)
	}
}

func BenchmarkEngineInferInt8Runs(b *testing.B) {
	benchEngineInt8Layout(b, deploy.LayoutRuns)
}

func BenchmarkEngineInferInt8Spans(b *testing.B) {
	benchEngineInt8Layout(b, deploy.LayoutSpans)
}

func BenchmarkEngineInferInt8Packed2b(b *testing.B) {
	benchEngineInt8Layout(b, deploy.LayoutPacked2b)
}
